// Package core implements the paper's primary contribution: the
// declarative, endpoint-centric tenant networking API of Table 2 —
// request_eip, request_sip, bind, set_permit_list, set_qos — plus the
// extensions the paper sketches (per-EIP weights on bind, endpoint groups,
// hot/cold-potato profiles).
//
// The provider side realizes each verb with the substrate packages:
// flat EIPs are carved densely from per-region blocks (so the provider can
// aggregate routes internally, §4 Connectivity), default-off admission is
// enforced by package permit, SIP load balancing by package lb, regional
// egress guarantees by package qos, and actual traffic runs as flows in
// package netsim over the package topo world.
//
// Tenants never see a VPC, gateway, route table, or appliance — that is
// the point.
//
// Concurrency: control-plane state is sharded by (tenant, region) — see
// shard.go. Every public verb takes its shard's write lock, so verbs in
// different shards run concurrently; the read plane (Connect admission,
// Probe, Explain) takes shard read locks in deterministic order. The
// unexported verb bodies assume the caller already holds the right lock
// (ApplyBatch calls them under the global gate).
package core

import (
	"fmt"
	"sync"

	"declnet/internal/addr"
	"declnet/internal/intent"
	"declnet/internal/lb"
	"declnet/internal/netsim"
	"declnet/internal/obs"
	"declnet/internal/permit"
	"declnet/internal/qos"
	"declnet/internal/sim"
	"declnet/internal/slo"
	"declnet/internal/topo"
)

// EIP is an endpoint IP: flat, globally routable, default-off.
type EIP = addr.IP

// SIP is a service IP: globally routable, load balanced to bound EIIPs.
type SIP = addr.IP

// endpoint is the provider's record for one granted EIP. All fields but
// egressCap are immutable after grant; egressCap is guarded by the
// endpoint's (tenant, region) shard lock.
type endpoint struct {
	eip       EIP
	tenant    string
	node      topo.NodeID // the VM/container the EIP fronts
	provider  string
	region    string
	shard     string  // "provider/region", precomputed so per-op SLO tagging never allocates
	egressCap float64 // per-VM egress guarantee/cap (bits/s), 0 = provider default
}

// service is the provider's record for one granted SIP.
type service struct {
	sip      SIP
	tenant   string
	balancer *lb.Balancer
}

// regionBlocks is how the provider carves address space: each region gets
// dense blocks so internal route aggregation works (the flexibility §4
// says flat addressing gives providers). Immutable after NewProvider.
type regionBlocks struct {
	pool *addr.HostPool
	base addr.Prefix
}

// Provider is one cloud's control plane implementing the Table-2 API.
// A multi-cloud world has one Provider per cloud sharing a topo.Graph and
// a netsim.Network (the public internet connects them).
type Provider struct {
	Name string

	eng *sim.Engine
	g   *topo.Graph
	net *netsim.Network

	// eipBlocks keys by region name; immutable after NewProvider (the
	// pools inside carry their own mutexes).
	eipBlocks map[string]*regionBlocks
	sipBlock  *addr.HostPool

	// addrs holds the granted endpoint/service tables, striped by /16
	// block so one region's churn never touches another's stripe.
	addrs *addrSpace

	// Permits is the provider's enforcement engine. Exposed for
	// experiments that measure its scale directly. Internally striped by
	// the target's /16 block.
	Permits *permit.Engine

	// polMu guards the per-tenant policy maps below (potato, quotas,
	// groups): low-traffic state shared across the tenant's shards.
	polMu sync.RWMutex

	// potato holds each tenant's transit profile (default hot, §4 QoS).
	potato map[string]qos.PotatoPolicy

	// quotas holds per-(tenant,region) egress limiters.
	quotas map[string]map[string]*tenantQuota

	// groups: the grouping extension — named EIP sets usable as permit
	// sources (§4's "grouping mechanism ... could easily be built into
	// our API as an extension").
	groups map[string]map[string][]EIP // tenant -> group -> members

	// defaultVMEgress is the standard per-VM egress guarantee adopted
	// unchanged from today's clouds (§4 QoS).
	defaultVMEgress float64

	// shards is the enclosing Cloud's shard table; nil for a standalone
	// provider (single-threaded use), in which case verbs skip locking.
	shards *ShardSet

	// resolve looks up tenant groups defined above the provider (the
	// Cloud's cross-provider groups); nil outside a Cloud.
	resolve func(tenant, group string) ([]EIP, bool)

	// meter, when set, records billable usage (see package meter).
	meter Biller

	// faults, when set, makes permit updates to unreachable endpoints
	// retry asynchronously instead of applying instantly (see faults.go).
	faults *FaultMonitor

	// trace, when set, records control-plane decisions into the cloud's
	// observability plane (see observe.go); nil-safe at the call site.
	trace func(kind obs.Kind, tenant string, src, dst addr.IP, verdict, detail, cause string)

	// addrsChanged, when set, notifies the Cloud that this provider's
	// granted address set (endpoints/services) changed, advancing the
	// address epoch (batch windows coalesce the bumps).
	addrsChanged func()

	// tenantChanged, when set, reports address-grant refcount deltas to
	// the Cloud so fully-released tenants' observability state can be
	// evicted (see Cloud.tenantDelta).
	tenantChanged func(tenant string, delta int)

	// slo, when set, is the live SLO plane every verb wrapper records
	// service time into (see internal/slo); nil-safe at every call site.
	slo *slo.Plane

	// rec, when set, is the durable intent journal (see internal/intent).
	// Verb wrappers record each accepted mutation under the shard lock,
	// after the body succeeded and before the verb returns; nil-safe.
	rec *intent.Log

	cfg Config
}

// Biller is the subset of package meter's Meter the control plane
// records into; an interface so core does not import meter.
type Biller interface {
	GrantEIP(tenant string, now sim.Time)
	ReleaseEIP(tenant string, now sim.Time)
	GrantSIP(tenant string, now sim.Time)
	ReleaseSIP(tenant string, now sim.Time)
	SetQuota(tenant string, now sim.Time, totalBps float64)
	AddBytes(tenant string, now sim.Time, bytes float64, reserved bool)
	PermitUpdate(tenant string, now sim.Time)
}

// SetBiller attaches usage metering to this provider.
func (p *Provider) SetBiller(b Biller) { p.meter = b }

// notifyAddrs reports an address-set mutation to the enclosing Cloud.
func (p *Provider) notifyAddrs() {
	if p.addrsChanged != nil {
		p.addrsChanged()
	}
}

// notifyTenant reports a grant-refcount delta to the enclosing Cloud.
func (p *Provider) notifyTenant(tenant string, delta int) {
	if p.tenantChanged != nil {
		p.tenantChanged(tenant, delta)
	}
}

// stampPermitLag marks an accepted permit update for the SLO plane's
// live propagation-lag sampler; resolved at the next admission-cache
// fill for target. Called from the unlocked verb bodies so the batch
// path samples too.
func (p *Provider) stampPermitLag(tenant string, target addr.IP) {
	p.slo.StampPermit(tenant, target)
}

// tenantQuota is one (tenant, region) egress guarantee. mu guards the
// enforcer map and the limiter's attach/redistribute sequence, which the
// read plane drives concurrently from Connect.
type tenantQuota struct {
	mu       sync.Mutex
	limiter  *qos.DistributedLimiter
	enforcer map[topo.NodeID]*qos.Enforcer
	quota    float64
}

// Config parameterizes a provider.
type Config struct {
	// EIPBase is the provider's public block, carved per region.
	// Each region receives consecutive /16s from it.
	EIPBase addr.Prefix
	// SIPBase is the provider's service-address block.
	SIPBase addr.Prefix
	// DefaultVMEgress is the per-VM egress cap applied when the tenant
	// sets none (bits/s).
	DefaultVMEgress float64
	// QuotaPeriod is the distributed limiter's control period.
	QuotaPeriod sim.Time
}

// NewProvider returns a control plane for the named cloud over the shared
// world. Regions are discovered from the graph's host nodes.
func NewProvider(name string, eng *sim.Engine, g *topo.Graph, net *netsim.Network, cfg Config) (*Provider, error) {
	if cfg.EIPBase.Len > 16 {
		return nil, fmt.Errorf("core: EIP base %s too small to carve /16 region blocks", cfg.EIPBase)
	}
	if cfg.DefaultVMEgress == 0 {
		cfg.DefaultVMEgress = 5 * topo.Gbps
	}
	if cfg.QuotaPeriod == 0 {
		cfg.QuotaPeriod = 100 * 1e6 // 100ms
	}
	p := &Provider{
		Name:            name,
		eng:             eng,
		g:               g,
		net:             net,
		eipBlocks:       make(map[string]*regionBlocks),
		sipBlock:        addr.NewHostPool(cfg.SIPBase, 1),
		addrs:           newAddrSpace(),
		Permits:         permit.NewEngine(),
		potato:          make(map[string]qos.PotatoPolicy),
		quotas:          make(map[string]map[string]*tenantQuota),
		groups:          make(map[string]map[string][]EIP),
		defaultVMEgress: cfg.DefaultVMEgress,
	}
	p.cfg = cfg
	// Carve one /16 per region, in sorted region order for determinism.
	regions := map[string]bool{}
	for _, n := range g.NodesWhere(func(n *topo.Node) bool { return n.Kind == topo.Host && n.Provider == name }) {
		regions[n.Region] = true
	}
	block := addr.NewBlockPool(cfg.EIPBase)
	names := make([]string, 0, len(regions))
	for r := range regions {
		names = append(names, r)
	}
	sortStrings(names)
	for _, r := range names {
		pfx, err := block.Allocate(16)
		if err != nil {
			return nil, fmt.Errorf("core: carving region %s: %w", r, err)
		}
		p.eipBlocks[r] = &regionBlocks{pool: addr.NewHostPool(pfx, 1), base: pfx}
	}
	return p, nil
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// RegionBlock exposes a region's EIP prefix (experiments use it to build
// the provider's aggregated routing view for E3).
func (p *Provider) RegionBlock(region string) (addr.Prefix, bool) {
	b, ok := p.eipBlocks[region]
	if !ok {
		return addr.Prefix{}, false
	}
	return b.base, true
}

// Regions returns the provider's region names, sorted.
func (p *Provider) Regions() []string {
	out := make([]string, 0, len(p.eipBlocks))
	for r := range p.eipBlocks {
		out = append(out, r)
	}
	sortStrings(out)
	return out
}

// sweepScopes returns the reconciler's scope list for this provider:
// every region plus "" for the region-less SIP plane. The slice is
// built with exactly the spare capacity the append needs, so callers
// never alias the backing array Regions hands out — the reconciler used
// to do append(p.Regions(), "") inline, which was only safe because
// Regions happened to return a full-capacity slice.
func (p *Provider) sweepScopes() []string {
	regions := p.Regions()
	out := make([]string, 0, len(regions)+1)
	out = append(out, regions...)
	return append(out, "")
}

// regionOf maps a granted-range address back to its region via the
// immutable block carving ("" for SIPs and foreign addresses).
func (p *Provider) regionOf(ip addr.IP) string {
	for r, b := range p.eipBlocks {
		if b.base.Contains(ip) {
			return r
		}
	}
	return ""
}

// shardKeyFor derives the shard an address-targeted verb belongs to:
// (tenant, provider/region) for addresses in a region block, the
// tenant's provider-wide shard otherwise (SIP plane).
func (p *Provider) shardKeyFor(tenant string, ip addr.IP) ShardKey {
	if r := p.regionOf(ip); r != "" {
		return ShardKey{Tenant: tenant, Region: p.Name + "/" + r}
	}
	return ShardKey{Tenant: tenant, Region: p.Name}
}

// regionShardKey is shardKeyFor when the region name is already known.
func (p *Provider) regionShardKey(tenant, region string) ShardKey {
	if region == "" {
		return ShardKey{Tenant: tenant, Region: p.Name}
	}
	return ShardKey{Tenant: tenant, Region: p.Name + "/" + region}
}

// lockShard takes the write lock for the shard owning (tenant, ip);
// no-op unlock for a standalone provider.
func (p *Provider) lockShard(k ShardKey) func() {
	if p.shards == nil {
		return func() {}
	}
	return p.shards.lockShard(k)
}

// RequestEIP grants an endpoint IP to a tenant's VM (Table 2:
// request_eip(vm_id)). The VM is a host node of this provider; its region
// determines which dense block the flat address comes from. The endpoint
// starts default-off: nothing can reach it until set_permit_list.
func (p *Provider) RequestEIP(tenant string, vm topo.NodeID) (EIP, error) {
	region := ""
	if n, ok := p.g.Node(vm); ok {
		region = n.Region
	}
	k := p.regionShardKey(tenant, region)
	op := p.slo.Begin(slo.VerbGrant, tenant, k.Region)
	defer p.lockShard(k)()
	eip, err := p.requestEIP(tenant, vm)
	if err == nil && p.rec != nil {
		p.rec.Record(tenant, intent.Op{Verb: intent.OpRequestEIP, VM: string(vm), Provider: p.Name, Region: region, Addr: eip})
	}
	op.End(err)
	return eip, err
}

func (p *Provider) requestEIP(tenant string, vm topo.NodeID) (EIP, error) {
	n, ok := p.g.Node(vm)
	if !ok {
		return 0, fmt.Errorf("core: unknown VM %q", vm)
	}
	if n.Kind != topo.Host {
		return 0, fmt.Errorf("core: %q is not a compute endpoint", vm)
	}
	if n.Provider != p.Name {
		return 0, fmt.Errorf("core: VM %q belongs to provider %q, not %q", vm, n.Provider, p.Name)
	}
	blocks, ok := p.eipBlocks[n.Region]
	if !ok {
		return 0, fmt.Errorf("core: no address block for region %q", n.Region)
	}
	eip, err := blocks.pool.Allocate()
	if err != nil {
		return 0, err
	}
	p.addrs.putEndpoint(eip, &endpoint{
		eip: eip, tenant: tenant, node: vm,
		provider: p.Name, region: n.Region,
		shard: p.Name + "/" + n.Region,
	})
	p.notifyAddrs()
	p.notifyTenant(tenant, 1)
	if p.meter != nil {
		p.meter.GrantEIP(tenant, p.eng.Now())
	}
	return eip, nil
}

// ReleaseEIP returns the endpoint address and tears down its permit state.
func (p *Provider) ReleaseEIP(tenant string, eip EIP) error {
	k := p.shardKeyFor(tenant, eip)
	op := p.slo.Begin(slo.VerbGrant, tenant, k.Region)
	defer p.lockShard(k)()
	err := p.releaseEIP(tenant, eip)
	if err == nil && p.rec != nil {
		p.rec.Record(tenant, intent.Op{Verb: intent.OpReleaseEIP, Addr: eip})
	}
	op.End(err)
	// End records into the tenant's SLO shard after releaseEIP may have
	// evicted it (last address gone); a zero-delta notify re-sweeps so a
	// churned tenant leaves no orphan shard behind.
	p.notifyTenant(tenant, 0)
	return err
}

func (p *Provider) releaseEIP(tenant string, eip EIP) error {
	ep, err := p.owned(tenant, eip)
	if err != nil {
		return err
	}
	// Drain from any SIPs it is bound to.
	for _, svc := range p.addrs.serviceSnapshot() {
		for _, be := range svc.balancer.Backends() {
			if be.EIP == eip {
				svc.balancer.Unbind(eip)
			}
		}
	}
	p.Permits.Drop(eip)
	p.addrs.delEndpoint(eip)
	p.notifyAddrs()
	p.notifyTenant(tenant, -1)
	if p.meter != nil {
		p.meter.ReleaseEIP(tenant, p.eng.Now())
	}
	return p.eipBlocks[ep.region].pool.Release(eip)
}

// RequestSIP grants a service IP (Table 2: request_sip()).
func (p *Provider) RequestSIP(tenant string) (SIP, error) {
	op := p.slo.Begin(slo.VerbGrant, tenant, p.Name)
	defer p.lockShard(p.regionShardKey(tenant, ""))()
	sip, err := p.requestSIP(tenant)
	if err == nil && p.rec != nil {
		p.rec.Record(tenant, intent.Op{Verb: intent.OpRequestSIP, Provider: p.Name, Addr: sip})
	}
	op.End(err)
	return sip, err
}

func (p *Provider) requestSIP(tenant string) (SIP, error) {
	sip, err := p.sipBlock.Allocate()
	if err != nil {
		return 0, err
	}
	p.addrs.putService(sip, &service{sip: sip, tenant: tenant, balancer: lb.New(sip)})
	p.notifyAddrs()
	p.notifyTenant(tenant, 1)
	if p.meter != nil {
		p.meter.GrantSIP(tenant, p.eng.Now())
	}
	return sip, nil
}

// ReleaseSIP tears down a service address.
func (p *Provider) ReleaseSIP(tenant string, sip SIP) error {
	op := p.slo.Begin(slo.VerbGrant, tenant, p.Name)
	defer p.lockShard(p.regionShardKey(tenant, ""))()
	err := p.releaseSIP(tenant, sip)
	if err == nil && p.rec != nil {
		p.rec.Record(tenant, intent.Op{Verb: intent.OpReleaseSIP, Addr: sip})
	}
	op.End(err)
	// See ReleaseEIP: re-sweep after End in case this released the
	// tenant's last address.
	p.notifyTenant(tenant, 0)
	return err
}

func (p *Provider) releaseSIP(tenant string, sip SIP) error {
	svc, ok := p.addrs.getService(sip)
	if !ok || svc.tenant != tenant {
		return fmt.Errorf("core: %s is not tenant %q's SIP", sip, tenant)
	}
	p.Permits.Drop(sip)
	p.addrs.delService(sip)
	p.notifyAddrs()
	p.notifyTenant(tenant, -1)
	if p.meter != nil {
		p.meter.ReleaseSIP(tenant, p.eng.Now())
	}
	return p.sipBlock.Release(sip)
}

// Bind associates an EIP with a SIP (Table 2: bind(eip, sip)) with the
// optional weight extension; the provider owns all load balancing.
func (p *Provider) Bind(tenant string, eip EIP, sip SIP, weight int) error {
	op := p.slo.Begin(slo.VerbBind, tenant, p.Name)
	defer p.lockShard(p.regionShardKey(tenant, ""))()
	err := p.bind(tenant, eip, sip, weight)
	if err == nil && p.rec != nil {
		p.rec.Record(tenant, intent.Op{Verb: intent.OpBind, EIP: eip, SIP: sip, Weight: weight})
	}
	op.End(err)
	return err
}

func (p *Provider) bind(tenant string, eip EIP, sip SIP, weight int) error {
	if _, err := p.owned(tenant, eip); err != nil {
		return err
	}
	svc, ok := p.addrs.getService(sip)
	if !ok || svc.tenant != tenant {
		return fmt.Errorf("core: %s is not tenant %q's SIP", sip, tenant)
	}
	svc.balancer.Bind(eip, weight)
	return nil
}

// Unbind removes an EIP from a SIP with connection draining.
func (p *Provider) Unbind(tenant string, eip EIP, sip SIP) error {
	op := p.slo.Begin(slo.VerbBind, tenant, p.Name)
	defer p.lockShard(p.regionShardKey(tenant, ""))()
	err := p.unbind(tenant, eip, sip)
	if err == nil && p.rec != nil {
		p.rec.Record(tenant, intent.Op{Verb: intent.OpUnbind, EIP: eip, SIP: sip})
	}
	op.End(err)
	return err
}

func (p *Provider) unbind(tenant string, eip EIP, sip SIP) error {
	svc, ok := p.addrs.getService(sip)
	if !ok || svc.tenant != tenant {
		return fmt.Errorf("core: %s is not tenant %q's SIP", sip, tenant)
	}
	return svc.balancer.Unbind(eip)
}

// SetPermitList replaces the permit list guarding an EIP or SIP (Table 2:
// set_permit_list(eip, permit_list)). Group references expand to their
// current membership.
func (p *Provider) SetPermitList(tenant string, target addr.IP, entries []permit.Entry, groupRefs ...string) error {
	k := p.shardKeyFor(tenant, target)
	op := p.slo.Begin(slo.VerbPermit, tenant, k.Region)
	defer p.lockShard(k)()
	err := p.setPermitList(tenant, target, entries, groupRefs...)
	if err == nil && p.rec != nil {
		p.rec.Record(tenant, intent.Op{Verb: intent.OpSetPermit, Provider: p.Name, Target: target, Entries: append([]permit.Entry(nil), entries...), Groups: groupRefs})
	}
	op.End(err)
	return err
}

func (p *Provider) setPermitList(tenant string, target addr.IP, entries []permit.Entry, groupRefs ...string) error {
	if err := p.ownsTarget(tenant, target); err != nil {
		return err
	}
	all := append([]permit.Entry(nil), entries...)
	for _, gname := range groupRefs {
		p.polMu.RLock()
		members, ok := p.groups[tenant][gname]
		p.polMu.RUnlock()
		if !ok && p.resolve != nil {
			members, ok = p.resolve(tenant, gname)
		}
		if !ok {
			return fmt.Errorf("core: unknown group %q", gname)
		}
		for _, m := range members {
			all = append(all, addr.NewPrefix(m, 32))
		}
	}
	// Under fault injection, an update targeting an endpoint whose
	// enforcement point is partitioned away cannot land immediately: it
	// is accepted and retried until the node answers or the policy's
	// timeout expires. SIP targets are enforced at the (always-on)
	// service frontend and never defer.
	if p.faults != nil {
		if ep, ok := p.addrs.getEndpoint(target); ok && !p.faults.Inj.Reachable(ep.node) {
			p.faults.retryPermit(p, tenant, target, all, ep.node)
			return nil
		}
	}
	p.Permits.Set(target, all)
	p.stampPermitLag(tenant, target)
	if p.meter != nil {
		p.meter.PermitUpdate(tenant, p.eng.Now())
	}
	if p.trace != nil {
		p.trace(obs.PermitUpdate, tenant, 0, target, "ok",
			fmt.Sprintf("entries=%d epoch=%d", len(all), p.Permits.Explain(0, target).Version), "")
	}
	return nil
}

// Permit incrementally allows one source.
func (p *Provider) Permit(tenant string, target addr.IP, entry permit.Entry) error {
	k := p.shardKeyFor(tenant, target)
	op := p.slo.Begin(slo.VerbPermit, tenant, k.Region)
	defer p.lockShard(k)()
	err := p.permitEntry(tenant, target, entry)
	if err == nil && p.rec != nil {
		p.rec.Record(tenant, intent.Op{Verb: intent.OpPermit, Target: target, Entries: []permit.Entry{entry}})
	}
	op.End(err)
	return err
}

func (p *Provider) permitEntry(tenant string, target addr.IP, entry permit.Entry) error {
	if err := p.ownsTarget(tenant, target); err != nil {
		return err
	}
	p.Permits.Permit(target, entry)
	p.stampPermitLag(tenant, target)
	if p.meter != nil {
		p.meter.PermitUpdate(tenant, p.eng.Now())
	}
	return nil
}

// Revoke incrementally removes one source.
func (p *Provider) Revoke(tenant string, target addr.IP, entry permit.Entry) error {
	k := p.shardKeyFor(tenant, target)
	op := p.slo.Begin(slo.VerbPermit, tenant, k.Region)
	defer p.lockShard(k)()
	err := p.revokeEntry(tenant, target, entry)
	if err == nil && p.rec != nil {
		p.rec.Record(tenant, intent.Op{Verb: intent.OpRevoke, Target: target, Entries: []permit.Entry{entry}})
	}
	op.End(err)
	return err
}

func (p *Provider) revokeEntry(tenant string, target addr.IP, entry permit.Entry) error {
	if err := p.ownsTarget(tenant, target); err != nil {
		return err
	}
	p.Permits.Revoke(target, entry)
	p.stampPermitLag(tenant, target)
	if p.meter != nil {
		p.meter.PermitUpdate(tenant, p.eng.Now())
	}
	return nil
}

// SetQoS sets the tenant's regional egress-bandwidth allowance (Table 2:
// set_qos(region, bandwidth)).
func (p *Provider) SetQoS(tenant, region string, bandwidth float64) error {
	k := p.regionShardKey(tenant, region)
	op := p.slo.Begin(slo.VerbQoS, tenant, k.Region)
	defer p.lockShard(k)()
	err := p.setQoS(tenant, region, bandwidth)
	if err == nil && p.rec != nil {
		p.rec.Record(tenant, intent.Op{Verb: intent.OpSetQoS, Provider: p.Name, Region: region, Bps: bandwidth})
	}
	op.End(err)
	return err
}

func (p *Provider) setQoS(tenant, region string, bandwidth float64) error {
	if _, ok := p.eipBlocks[region]; !ok {
		return fmt.Errorf("core: unknown region %q", region)
	}
	tq := p.quota(tenant, region)
	tq.mu.Lock()
	tq.quota = bandwidth
	tq.limiter.SetQuota(bandwidth)
	tq.mu.Unlock()
	if p.meter != nil {
		var total float64
		p.polMu.RLock()
		for _, q := range p.quotas[tenant] {
			total += q.quota
		}
		p.polMu.RUnlock()
		p.meter.SetQuota(tenant, p.eng.Now(), total)
	}
	return nil
}

// SetPotato selects the tenant's transit profile (hot/cold/dedicated-
// approximation; §4 QoS "adopt this option unchanged").
func (p *Provider) SetPotato(tenant string, policy qos.PotatoPolicy) {
	op := p.slo.Begin(slo.VerbQoS, tenant, p.Name)
	defer p.lockShard(p.regionShardKey(tenant, ""))()
	p.setPotato(tenant, policy)
	if p.rec != nil {
		p.rec.Record(tenant, intent.Op{Verb: intent.OpSetPotato, Provider: p.Name, Policy: policy.String()})
	}
	op.End(nil)
}

func (p *Provider) setPotato(tenant string, policy qos.PotatoPolicy) {
	p.polMu.Lock()
	p.potato[tenant] = policy
	p.polMu.Unlock()
}

// potatoOf returns the tenant's transit profile (default hot).
func (p *Provider) potatoOf(tenant string) qos.PotatoPolicy {
	p.polMu.RLock()
	policy, ok := p.potato[tenant]
	p.polMu.RUnlock()
	if !ok {
		return qos.HotPotato
	}
	return policy
}

// quotaOf returns the (tenant, region) quota record if one exists.
func (p *Provider) quotaOf(tenant, region string) (*tenantQuota, bool) {
	p.polMu.RLock()
	tq, ok := p.quotas[tenant][region]
	p.polMu.RUnlock()
	return tq, ok
}

// SetVMEgressCap overrides the per-VM egress guarantee for one endpoint.
func (p *Provider) SetVMEgressCap(tenant string, eip EIP, bps float64) error {
	k := p.shardKeyFor(tenant, eip)
	op := p.slo.Begin(slo.VerbQoS, tenant, k.Region)
	defer p.lockShard(k)()
	ep, err := p.owned(tenant, eip)
	if err == nil {
		ep.egressCap = bps
		if p.rec != nil {
			p.rec.Record(tenant, intent.Op{Verb: intent.OpSetVMEgress, EIP: eip, Bps: bps})
		}
	}
	op.End(err)
	return err
}

// CreateGroup defines or replaces a named endpoint group (extension).
func (p *Provider) CreateGroup(tenant, name string, members ...EIP) error {
	op := p.slo.Begin(slo.VerbBind, tenant, p.Name)
	defer p.lockShard(p.regionShardKey(tenant, ""))()
	err := p.createGroup(tenant, name, members...)
	if err == nil && p.rec != nil {
		p.rec.Record(tenant, intent.Op{Verb: intent.OpCreateGroup, Provider: p.Name, Name: name, Members: append([]EIP(nil), members...)})
	}
	op.End(err)
	return err
}

func (p *Provider) createGroup(tenant, name string, members ...EIP) error {
	for _, m := range members {
		if _, err := p.owned(tenant, m); err != nil {
			return err
		}
	}
	p.polMu.Lock()
	if p.groups[tenant] == nil {
		p.groups[tenant] = make(map[string][]EIP)
	}
	p.groups[tenant][name] = append([]EIP(nil), members...)
	p.polMu.Unlock()
	return nil
}

// MarkHealth is the provider health checker's signal for a bound backend.
// Structure-safe without shard locks: it only flips balancer health bits
// under the balancers' own mutexes.
func (p *Provider) MarkHealth(eip EIP, healthy bool) {
	for _, svc := range p.addrs.serviceSnapshot() {
		for _, be := range svc.balancer.Backends() {
			if be.EIP == eip {
				svc.balancer.SetHealth(eip, healthy)
			}
		}
	}
}

// Endpoint resolution helpers.

func (p *Provider) owned(tenant string, eip EIP) (*endpoint, error) {
	ep, ok := p.addrs.getEndpoint(eip)
	if !ok || ep.tenant != tenant {
		return nil, fmt.Errorf("core: %s is not tenant %q's EIP", eip, tenant)
	}
	return ep, nil
}

func (p *Provider) ownsTarget(tenant string, target addr.IP) error {
	if ep, ok := p.addrs.getEndpoint(target); ok && ep.tenant == tenant {
		return nil
	}
	if svc, ok := p.addrs.getService(target); ok && svc.tenant == tenant {
		return nil
	}
	return fmt.Errorf("core: %s is not tenant %q's address", target, tenant)
}

// Lookup returns the endpoint behind an EIP.
func (p *Provider) Lookup(eip EIP) (topo.NodeID, bool) {
	ep, ok := p.addrs.getEndpoint(eip)
	if !ok {
		return "", false
	}
	return ep.node, true
}

// Service returns the balancer behind a SIP (read-only use in tests).
func (p *Provider) Service(sip SIP) (*lb.Balancer, bool) {
	svc, ok := p.addrs.getService(sip)
	if !ok {
		return nil, false
	}
	return svc.balancer, true
}

// EndpointCount returns granted EIPs; ServiceCount granted SIPs.
func (p *Provider) EndpointCount() int { return p.addrs.endpointCount() }
func (p *Provider) ServiceCount() int  { return p.addrs.serviceCount() }

// quota lazily builds the (tenant, region) limiter.
func (p *Provider) quota(tenant, region string) *tenantQuota {
	p.polMu.Lock()
	defer p.polMu.Unlock()
	if p.quotas[tenant] == nil {
		p.quotas[tenant] = make(map[string]*tenantQuota)
	}
	tq, ok := p.quotas[tenant][region]
	if !ok {
		tq = &tenantQuota{enforcer: make(map[topo.NodeID]*qos.Enforcer)}
		tq.limiter = qos.NewDistributedLimiter(p.eng, 0, p.cfgQuotaPeriod())
		p.quotas[tenant][region] = tq
	}
	return tq
}

func (p *Provider) cfgQuotaPeriod() sim.Time { return p.cfg.QuotaPeriod }
