package core

import (
	"fmt"
	"sort"

	"declnet/internal/addr"
	"declnet/internal/fault"
	"declnet/internal/metrics"
	"declnet/internal/obs"
	"declnet/internal/permit"
	"declnet/internal/sim"
	"declnet/internal/topo"
)

// FaultPolicy parameterizes how the provider control plane reacts to
// infrastructure failures. All reactions are the provider's job: the
// tenant declared a SIP with bound backends and a QoS quota, and keeps
// exactly that through a failure — no API calls required.
type FaultPolicy struct {
	// HealthInterval is the health-check probe period for SIP backends
	// and quota enforcers.
	HealthInterval sim.Time
	// DownAfter is how many consecutive missed probes pull a backend out
	// of rotation (so failover latency ≈ HealthInterval * DownAfter).
	DownAfter int
	// RebindBackoff is the wait before re-binding a recovered backend;
	// it doubles on every subsequent failure of the same backend (up to
	// RebindBackoffMax) so a flapping host cannot churn the rotation.
	RebindBackoff    sim.Time
	RebindBackoffMax sim.Time
	// PermitRetryInterval / PermitRetryTimeout govern permit-plane
	// updates targeting an unreachable endpoint: the update is accepted,
	// retried each interval, and abandoned after the timeout.
	PermitRetryInterval sim.Time
	PermitRetryTimeout  sim.Time
}

// DefaultFaultPolicy mirrors common cloud health-check settings:
// 500ms probes, 2 misses to pull, 1s re-bind backoff capped at 8s,
// permit retries every second for at most 30s.
func DefaultFaultPolicy() FaultPolicy {
	return FaultPolicy{
		HealthInterval:      500 * 1e6,
		DownAfter:           2,
		RebindBackoff:       1e9,
		RebindBackoffMax:    8e9,
		PermitRetryInterval: 1e9,
		PermitRetryTimeout:  30e9,
	}
}

func (fp FaultPolicy) withDefaults() FaultPolicy {
	def := DefaultFaultPolicy()
	if fp.HealthInterval <= 0 {
		fp.HealthInterval = def.HealthInterval
	}
	if fp.DownAfter <= 0 {
		fp.DownAfter = def.DownAfter
	}
	if fp.RebindBackoff <= 0 {
		fp.RebindBackoff = def.RebindBackoff
	}
	if fp.RebindBackoffMax < fp.RebindBackoff {
		fp.RebindBackoffMax = def.RebindBackoffMax
	}
	if fp.RebindBackoffMax < fp.RebindBackoff {
		fp.RebindBackoffMax = fp.RebindBackoff
	}
	if fp.PermitRetryInterval <= 0 {
		fp.PermitRetryInterval = def.PermitRetryInterval
	}
	if fp.PermitRetryTimeout <= 0 {
		fp.PermitRetryTimeout = def.PermitRetryTimeout
	}
	return fp
}

// DetectDelay is the worst-case time from failure to a backend leaving
// rotation under this policy.
func (fp FaultPolicy) DetectDelay() sim.Time {
	return fp.HealthInterval * sim.Time(fp.DownAfter)
}

type backendKey struct {
	provider string
	sip      SIP
	eip      EIP
}

// backendState is the monitor's health record for one SIP binding.
type backendState struct {
	misses   int      // consecutive failed probes while in rotation
	down     bool     // pulled from rotation
	backoff  sim.Time // current re-bind backoff (doubles per failure)
	rebindAt sim.Time // when a recovered backend re-enters; 0 = not waiting
	downAt   sim.Time // when the failover was detected, for MTTR metrics
}

// FaultMonitor is the provider-side reaction to injected faults: a
// periodic health sweep that fails SIP bindings over to surviving
// backends, re-binds recovered ones with exponential backoff, and
// degrades QoS quotas when enforcement points partition away.
type FaultMonitor struct {
	Inj    *fault.Injector
	Policy FaultPolicy

	cloud    *Cloud
	backends map[backendKey]*backendState

	// Counters for experiment tables and tests.
	Failovers      uint64 // backends pulled from rotation
	Rebinds        uint64 // backends restored to rotation
	PermitRetries  uint64 // deferred permit-update attempts
	PermitTimeouts uint64 // permit updates abandoned
	LastFailoverAt sim.Time
	LastRebindAt   sim.Time

	// pending tracks deferred permit updates by target address (when the
	// update was first accepted), so Explain can tell "denied" apart from
	// "accepted but not yet enforceable".
	pending map[addr.IP]sim.Time
	// mMTTR observes failover detect->rebind latency; mPermitLag observes
	// deferred-permit propagation lag. Both nil (no-op) without a registry.
	mMTTR      *metrics.RHistogram
	mPermitLag *metrics.RHistogram
}

// EnableFaults attaches a fault injector and starts the provider health
// monitor. Idempotent: repeated calls return the same monitor.
func (c *Cloud) EnableFaults(policy FaultPolicy) *FaultMonitor {
	if c.monitor != nil {
		return c.monitor
	}
	policy = policy.withDefaults()
	m := &FaultMonitor{
		Inj:      fault.NewInjector(c.Eng, c.G, c.Net),
		Policy:   policy,
		cloud:    c,
		backends: make(map[backendKey]*backendState),
		pending:  make(map[addr.IP]sim.Time),
	}
	c.monitor = m
	if c.reg != nil {
		m.registerMetrics(c.reg)
	}
	for _, p := range c.providers {
		p.faults = m
	}
	// Daemon ticker: the health loop never keeps a deadline-less Run
	// alive on its own.
	c.Eng.EveryDaemon(policy.HealthInterval, m.tick)
	return m
}

// Faults returns the monitor, or nil before EnableFaults.
func (c *Cloud) Faults() *FaultMonitor { return c.monitor }

// BackendDown reports whether the monitor currently holds a binding out
// of rotation (test hook).
func (m *FaultMonitor) BackendDown(provider string, sip SIP, eip EIP) bool {
	st, ok := m.backends[backendKey{provider, sip, eip}]
	return ok && st.down
}

// PendingPermit reports whether a permit update for target is accepted
// but still deferred (its enforcement point unreachable), and since when.
func (m *FaultMonitor) PendingPermit(target addr.IP) (sim.Time, bool) {
	since, ok := m.pending[target]
	return since, ok
}

// registerMetrics exposes the monitor's reaction counters and latency
// distributions through the cloud's registry.
func (m *FaultMonitor) registerMetrics(reg *metrics.Registry) {
	reg.GaugeFunc("declnet_failovers_total",
		"Backends pulled from rotation.", func() float64 { return float64(m.Failovers) })
	reg.GaugeFunc("declnet_rebinds_total",
		"Backends restored to rotation.", func() float64 { return float64(m.Rebinds) })
	reg.GaugeFunc("declnet_permit_retries_total",
		"Deferred permit-update attempts.", func() float64 { return float64(m.PermitRetries) })
	reg.GaugeFunc("declnet_permit_timeouts_total",
		"Permit updates abandoned.", func() float64 { return float64(m.PermitTimeouts) })
	reg.GaugeFunc("declnet_permit_deferred",
		"Permit updates currently deferred.", func() float64 { return float64(len(m.pending)) })
	reg.GaugeFunc("declnet_faults_injected_total",
		"Injected link+node+region failures.", func() float64 {
			return float64(m.Inj.LinkFailures + m.Inj.NodeFailures + m.Inj.RegionFailures)
		})
	m.mMTTR = reg.Histogram("declnet_failover_mttr_seconds",
		"Failover detect-to-rebind latency.")
	m.mPermitLag = reg.Histogram("declnet_permit_propagation_seconds",
		"Deferred permit-update propagation lag.")
}

// tick is one health sweep over every provider, in deterministic order
// (the provider index's list is name-sorted).
func (m *FaultMonitor) tick() {
	now := m.cloud.Eng.Now()
	for _, p := range m.cloud.pidx.Load().list {
		m.sweepServices(now, p)
		m.sweepQuotas(p)
	}
}

// sweepServices probes every SIP backend and drives rotation health.
func (m *FaultMonitor) sweepServices(now sim.Time, p *Provider) {
	svcs := p.addrs.serviceSnapshot()
	for i := 1; i < len(svcs); i++ {
		for j := i; j > 0 && svcs[j].sip < svcs[j-1].sip; j-- {
			svcs[j], svcs[j-1] = svcs[j-1], svcs[j]
		}
	}
	for _, svc := range svcs {
		sip := svc.sip
		for _, be := range svc.balancer.Backends() {
			node, ok := p.Lookup(be.EIP)
			if !ok {
				continue
			}
			st := m.state(p.Name, sip, be.EIP)
			if m.Inj.Reachable(node) {
				st.misses = 0
				if !st.down {
					continue
				}
				// Recovered: re-bind only after the backoff elapses, so a
				// flapping backend cannot churn in and out of rotation.
				if st.rebindAt == 0 {
					st.rebindAt = now + st.backoff
				}
				if now >= st.rebindAt {
					st.down = false
					st.rebindAt = 0
					svc.balancer.SetHealth(be.EIP, true)
					m.Rebinds++
					m.LastRebindAt = now
					if st.downAt > 0 {
						m.mMTTR.Observe((now - st.downAt).Seconds())
					}
					m.cloud.traceEvent(obs.Rebind, svc.tenant, be.EIP, sip, "ok",
						fmt.Sprintf("node=%s mttr=%v", node, now-st.downAt), "")
					st.downAt = 0
				}
				continue
			}
			st.rebindAt = 0
			if st.down {
				continue
			}
			st.misses++
			if st.misses < m.Policy.DownAfter {
				continue
			}
			// Pull the binding; the balancer serves from survivors only.
			st.down = true
			svc.balancer.SetHealth(be.EIP, false)
			m.Failovers++
			m.LastFailoverAt = now
			st.downAt = now
			m.cloud.traceEvent(obs.Failover, svc.tenant, be.EIP, sip, "fail",
				fmt.Sprintf("node=%s misses=%d", node, st.misses),
				obs.Chain(m.Inj.Cause(node)...))
			if st.backoff == 0 {
				st.backoff = m.Policy.RebindBackoff
			} else if st.backoff *= 2; st.backoff > m.Policy.RebindBackoffMax {
				st.backoff = m.Policy.RebindBackoffMax
			}
		}
	}
}

// sweepQuotas marks quota enforcers on unreachable nodes down so the
// distributed limiter re-shares the tenant's guarantee across surviving
// regions' enforcement points (graceful degradation under partition).
func (m *FaultMonitor) sweepQuotas(p *Provider) {
	// Collect the quota records in deterministic order under polMu, then
	// drive each one under its own mutex (Connect attaches enforcers
	// concurrently).
	p.polMu.RLock()
	tenants := make([]string, 0, len(p.quotas))
	for t := range p.quotas {
		tenants = append(tenants, t)
	}
	sortStrings(tenants)
	var tqs []*tenantQuota
	for _, tenant := range tenants {
		regions := make([]string, 0, len(p.quotas[tenant]))
		for r := range p.quotas[tenant] {
			regions = append(regions, r)
		}
		sortStrings(regions)
		for _, region := range regions {
			tqs = append(tqs, p.quotas[tenant][region])
		}
	}
	p.polMu.RUnlock()
	for _, tq := range tqs {
		tq.mu.Lock()
		nodes := make([]topo.NodeID, 0, len(tq.enforcer))
		for n := range tq.enforcer {
			nodes = append(nodes, n)
		}
		sortNodeIDs(nodes)
		changed := false
		for _, n := range nodes {
			enf := tq.enforcer[n]
			up := m.Inj.Reachable(n)
			if enf.Up() != up {
				enf.SetUp(up)
				changed = true
			}
		}
		if changed {
			tq.limiter.Redistribute()
		}
		tq.mu.Unlock()
	}
}

func (m *FaultMonitor) state(provider string, sip SIP, eip EIP) *backendState {
	k := backendKey{provider, sip, eip}
	st, ok := m.backends[k]
	if !ok {
		st = &backendState{}
		m.backends[k] = st
	}
	return st
}

// retryPermit accepts a permit update whose target endpoint is currently
// unreachable and keeps retrying until the endpoint's enforcement point
// answers or the timeout expires. Regular (non-daemon) events: bounded by
// the timeout, so a deadline-less Run still terminates.
func (m *FaultMonitor) retryPermit(p *Provider, tenant string, target addr.IP, entries []permit.Entry, node topo.NodeID) {
	accepted := m.cloud.Eng.Now()
	deadline := accepted + m.Policy.PermitRetryTimeout
	if _, dup := m.pending[target]; !dup {
		m.pending[target] = accepted
	}
	m.cloud.traceEvent(obs.PermitDefer, tenant, 0, target, "deferred",
		fmt.Sprintf("entries=%d node=%s", len(entries), node),
		obs.Chain(m.Inj.Cause(node)...))
	var attempt func()
	attempt = func() {
		// The target may have been released while the update was pending.
		ep, ok := p.addrs.getEndpoint(target)
		if !ok || ep.tenant != tenant {
			delete(m.pending, target)
			return
		}
		if m.Inj.Reachable(node) {
			p.Permits.Set(target, entries)
			// The deferred update lands outside any journaled record: bump
			// the digest section it changed, and mark the target dirty so
			// the next incremental sweep re-verifies it against the latest
			// declared list (which may have moved on while we retried).
			m.cloud.convBumpTarget(p, target)
			m.cloud.convMarkPermit(p, target)
			if p.meter != nil {
				p.meter.PermitUpdate(tenant, m.cloud.Eng.Now())
			}
			lag := m.cloud.Eng.Now() - accepted
			m.mPermitLag.Observe(lag.Seconds())
			m.cloud.traceEvent(obs.PermitApply, tenant, 0, target, "ok",
				fmt.Sprintf("lag=%v epoch=%d", lag, p.Permits.Explain(0, target).Version), "")
			delete(m.pending, target)
			return
		}
		if m.cloud.Eng.Now()+m.Policy.PermitRetryInterval > deadline {
			m.PermitTimeouts++
			m.cloud.traceEvent(obs.PermitTimeout, tenant, 0, target, "fail",
				fmt.Sprintf("after=%v", m.cloud.Eng.Now()-accepted),
				obs.Chain(append([]string{"permit-timeout:" + target.String()}, m.Inj.Cause(node)...)...))
			delete(m.pending, target)
			// Timed out: the live list never took the declared update. Mark
			// it dirty — with the pending flag gone, the reconciler owns
			// the repair and should find it promptly, not in K sweeps.
			m.cloud.convMarkPermit(p, target)
			return
		}
		m.PermitRetries++
		m.cloud.Eng.After(m.Policy.PermitRetryInterval, attempt)
	}
	m.PermitRetries++
	m.cloud.Eng.After(m.Policy.PermitRetryInterval, attempt)
}

func sortIPs(s []addr.IP) {
	// RestoreIntent and StateDigest sort full endpoint tables (10^5+ at
	// the E13 tier), so this must not be quadratic.
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}

func sortNodeIDs(s []topo.NodeID) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
