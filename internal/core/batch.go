// Batch writes: ApplyBatch applies a sequence of Table-2 mutations as
// one unit of work. The point is amortization, not transactionality —
// the batch takes the API write lock once, advances the graph, permit,
// and address epochs once (via the topo and permit batch windows), and
// so costs O(1) cache invalidation no matter how many operations it
// carries. A tenant onboarding 10k endpoints pays one flush instead of
// 10k.
//
// Semantics: the whole batch is statically validated up front (unknown
// verbs, missing operands, malformed addresses, dangling back-references,
// unknown providers) and rejected wholesale — nothing applied — on any
// validation error. At apply time, operations run in order; the first
// runtime failure stops the batch and is reported as a *BatchError
// carrying the failing index. Operations already applied stay applied
// (no rollback): every verb here is idempotent to re-issue or cheap to
// reverse, and partial results are returned so the caller knows exactly
// how far it got.
//
// Back-references: an address operand may be written "$i" to mean "the
// address granted by op i of this same batch" (op i must be a
// request_eip or request_sip at a smaller index). This is what lets a
// single batch request an EIP and then bind and permit it.
package core

import (
	"fmt"
	"strconv"
	"strings"

	"declnet/internal/addr"
	"declnet/internal/intent"
	"declnet/internal/permit"
	"declnet/internal/qos"
	"declnet/internal/slo"
	"declnet/internal/topo"
)

// BatchOp is one mutation in a batch. Op selects the verb; the other
// fields are its operands (a field not named for a verb is ignored).
// Address-valued strings (EIP, SIP, Target, Members) accept dotted-quad
// addresses or "$i" back-references.
//
//	request_eip    VM                       -> grants an EIP (result Addr)
//	release_eip    EIP
//	request_sip    Provider                 -> grants a SIP (result Addr)
//	release_sip    SIP
//	bind           EIP, SIP, Weight
//	unbind         EIP, SIP
//	set_permit     Target, Entries, Groups  (replaces the permit list)
//	permit         Target, Entries          (adds each entry)
//	revoke         Target, Entries          (removes each entry)
//	set_qos        Provider, Region, Bandwidth
//	set_potato     Provider, Policy
//	create_group   Name, Members
//	register_name  Name, Target
type BatchOp struct {
	Op string `json:"op"`

	VM        topo.NodeID      `json:"vm,omitempty"`
	Provider  string           `json:"provider,omitempty"`
	EIP       string           `json:"eip,omitempty"`
	SIP       string           `json:"sip,omitempty"`
	Target    string           `json:"target,omitempty"`
	Weight    int              `json:"weight,omitempty"`
	Entries   []permit.Entry   `json:"-"`
	Groups    []string         `json:"groups,omitempty"`
	Region    string           `json:"region,omitempty"`
	Bandwidth float64          `json:"bandwidth_bps,omitempty"`
	Policy    qos.PotatoPolicy `json:"-"`
	Name      string           `json:"name,omitempty"`
	Members   []string         `json:"members,omitempty"`
}

// BatchResult is the outcome of one applied op. Addr is the granted
// address for request_eip/request_sip and zero otherwise.
type BatchResult struct {
	Op   string  `json:"op"`
	Addr addr.IP `json:"addr,omitempty"`
}

// BatchError reports the first op that failed, with its index. For a
// validation error nothing was applied; for a runtime error the caller
// also receives the results of the ops before Index, which stay applied.
type BatchError struct {
	Index int
	Op    string
	Err   error
}

func (e *BatchError) Error() string {
	return fmt.Sprintf("core: batch op %d (%s): %v", e.Index, e.Op, e.Err)
}

func (e *BatchError) Unwrap() error { return e.Err }

// noteAddrsChanged records an address-space mutation. Outside a batch
// it bumps addrEpoch immediately; inside one, the bump is deferred to
// the outermost endBatch. Address resolution itself is exact (the block
// index plus the striped address tables), so nothing needs flushing —
// the epoch is pure change accounting. batchDepth is written only under
// the shard set's global gate, which orders it against the shard-locked
// verbs that call this.
func (c *Cloud) noteAddrsChanged() {
	if c.batchDepth > 0 {
		c.addrsDirty = true
		return
	}
	c.addrEpoch.Add(1)
}

// beginBatch opens a coalescing window: graph epoch bumps, permit list
// version bumps, and address epoch bumps all collapse to one advance at
// the matching endBatch. Batches nest; only the outermost pair does the
// work. Callers must hold write exclusion — ApplyBatch takes the shard
// set's global gate; Cloud.Batch relies on the API layer's write lock.
func (c *Cloud) beginBatch() {
	c.batchDepth++
	if c.batchDepth > 1 {
		return
	}
	c.G.BeginBatch()
	c.batchEngines = c.batchEngines[:0]
	for _, p := range c.providers {
		p.Permits.BeginBatch()
		c.batchEngines = append(c.batchEngines, p.Permits)
	}
}

// endBatch closes the window opened by beginBatch, releasing the
// deferred epoch advances.
func (c *Cloud) endBatch() {
	if c.batchDepth == 0 {
		panic("core: endBatch without beginBatch")
	}
	c.batchDepth--
	if c.batchDepth > 0 {
		return
	}
	for _, e := range c.batchEngines {
		e.EndBatch()
	}
	c.batchEngines = c.batchEngines[:0]
	c.G.EndBatch()
	if c.addrsDirty {
		c.addrsDirty = false
		c.addrEpoch.Add(1)
	}
}

// Batch runs fn inside a coalescing window (see beginBatch). It exists
// for callers composing their own multi-verb mutations; ApplyBatch uses
// it internally.
func (c *Cloud) Batch(fn func() error) error {
	c.beginBatch()
	defer c.endBatch()
	return fn()
}

// ApplyBatch validates and applies ops for the tenant as one batch.
// On a validation error it returns (nil, *BatchError) with nothing
// applied. On a runtime error at op i it returns the results of ops
// [0, i) and a *BatchError with Index i; those ops stay applied. On
// success it returns one result per op.
//
// A batch runs under the shard set's global gate — it mutates epoch
// state (graph, permit engines, address epoch) that spans every shard —
// so the op bodies below are the unlocked verb variants: taking a
// shard's lock while holding the gate would self-deadlock.
func (c *Cloud) ApplyBatch(tenant string, ops []BatchOp) ([]BatchResult, error) {
	sop := c.slo.Begin(slo.VerbBatch, tenant, "")
	defer c.shards.lockGlobal()()
	if err := c.validateBatch(ops); err != nil {
		sop.End(err)
		return nil, err
	}
	results := make([]BatchResult, 0, len(ops))
	var iops []intent.Op
	c.beginBatch()
	defer c.endBatch()
	for i := range ops {
		res, err := c.applyOp(tenant, &ops[i], results)
		if err != nil {
			berr := &BatchError{Index: i, Op: ops[i].Op, Err: err}
			// The ops before Index stay applied, so they are journaled —
			// still as one atomic frame for this batch.
			if c.rec != nil && len(iops) > 0 {
				c.rec.Record(tenant, iops...)
			}
			sop.End(berr)
			c.tenantDelta(tenant, 0)
			return results, berr
		}
		if c.rec != nil {
			if iop, ok := c.intentOp(&ops[i], res, results); ok {
				iops = append(iops, iop)
			}
		}
		results = append(results, res)
	}
	if c.rec != nil && len(iops) > 0 {
		// One frame for the whole batch: replay applies it atomically.
		c.rec.Record(tenant, iops...)
	}
	sop.End(nil)
	// A batch may have released the tenant's last address; End just
	// recorded into its SLO shard, so re-sweep (zero-delta) to keep the
	// fully-released eviction airtight.
	c.tenantDelta(tenant, 0)
	return results, nil
}

// validateBatch is the static all-or-nothing pass: verb and operand
// shape, address syntax, back-reference targets, and provider names are
// checked before anything is applied.
func (c *Cloud) validateBatch(ops []BatchOp) error {
	for i := range ops {
		op := &ops[i]
		fail := func(format string, args ...any) error {
			return &BatchError{Index: i, Op: op.Op, Err: fmt.Errorf(format, args...)}
		}
		checkAddr := func(field, s string) error {
			if s == "" {
				return fail("missing %s", field)
			}
			if strings.HasPrefix(s, "$") {
				j, err := strconv.Atoi(s[1:])
				if err != nil || j < 0 || j >= i {
					return fail("%s: back-reference %q must name an earlier op", field, s)
				}
				if ops[j].Op != "request_eip" && ops[j].Op != "request_sip" {
					return fail("%s: back-reference %q targets %q, not an address grant", field, s, ops[j].Op)
				}
				return nil
			}
			if _, err := addr.ParseIP(s); err != nil {
				return fail("%s: %v", field, err)
			}
			return nil
		}
		checkProvider := func() error {
			if op.Provider == "" {
				return fail("missing provider")
			}
			if _, ok := c.providers[op.Provider]; !ok {
				return fail("unknown provider %q", op.Provider)
			}
			return nil
		}
		var err error
		switch op.Op {
		case "request_eip":
			if op.VM == "" {
				err = fail("missing vm")
			}
		case "release_eip":
			err = checkAddr("eip", op.EIP)
		case "request_sip":
			err = checkProvider()
		case "release_sip":
			err = checkAddr("sip", op.SIP)
		case "bind", "unbind":
			if err = checkAddr("eip", op.EIP); err == nil {
				err = checkAddr("sip", op.SIP)
			}
		case "set_permit":
			err = checkAddr("target", op.Target)
		case "permit", "revoke":
			if err = checkAddr("target", op.Target); err == nil && len(op.Entries) == 0 {
				err = fail("missing entries")
			}
		case "set_qos":
			if err = checkProvider(); err == nil && op.Region == "" {
				err = fail("missing region")
			}
		case "set_potato":
			err = checkProvider()
		case "create_group":
			if op.Name == "" {
				err = fail("missing name")
			} else {
				for _, m := range op.Members {
					if err = checkAddr("members", m); err != nil {
						break
					}
				}
			}
		case "register_name":
			if op.Name == "" {
				err = fail("missing name")
			} else {
				err = checkAddr("target", op.Target)
			}
		default:
			err = fail("unknown op")
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// batchAddr resolves an address operand: a "$i" back-reference to an
// earlier grant's result, or a literal address (already syntax-checked
// by validateBatch).
func batchAddr(s string, prior []BatchResult) (addr.IP, error) {
	if strings.HasPrefix(s, "$") {
		j, err := strconv.Atoi(s[1:])
		if err != nil || j < 0 || j >= len(prior) {
			return 0, fmt.Errorf("bad back-reference %q", s)
		}
		return prior[j].Addr, nil
	}
	return addr.ParseIP(s)
}

// grantedAddr resolves an operand and finds the provider that granted
// it. Mid-batch this is exact: providerOfAddr reads the live striped
// address tables through the block index, not a cache.
func (c *Cloud) grantedAddr(s string, prior []BatchResult) (addr.IP, *Provider, error) {
	ip, err := batchAddr(s, prior)
	if err != nil {
		return 0, nil, err
	}
	p, ok := c.providerOfAddr(ip)
	if !ok {
		return 0, nil, fmt.Errorf("%s is not a granted address", ip)
	}
	return ip, p, nil
}

// applyOp applies one already-validated op, mirroring the per-verb
// provider resolution of the declnet.Tenant facade.
func (c *Cloud) applyOp(tenant string, op *BatchOp, prior []BatchResult) (BatchResult, error) {
	res := BatchResult{Op: op.Op}
	switch op.Op {
	case "request_eip":
		n, ok := c.G.Node(op.VM)
		if !ok {
			return res, fmt.Errorf("unknown VM %q", op.VM)
		}
		p, ok := c.providers[n.Provider]
		if !ok {
			return res, fmt.Errorf("no provider %q serves VM %q", n.Provider, op.VM)
		}
		eip, err := p.requestEIP(tenant, op.VM)
		if err != nil {
			return res, err
		}
		res.Addr = eip
	case "release_eip":
		ip, p, err := c.grantedAddr(op.EIP, prior)
		if err != nil {
			return res, err
		}
		return res, p.releaseEIP(tenant, ip)
	case "request_sip":
		sip, err := c.providers[op.Provider].requestSIP(tenant)
		if err != nil {
			return res, err
		}
		res.Addr = sip
	case "release_sip":
		ip, p, err := c.grantedAddr(op.SIP, prior)
		if err != nil {
			return res, err
		}
		return res, p.releaseSIP(tenant, ip)
	case "bind", "unbind":
		eip, err := batchAddr(op.EIP, prior)
		if err != nil {
			return res, err
		}
		sip, p, err := c.grantedAddr(op.SIP, prior)
		if err != nil {
			return res, err
		}
		if op.Op == "bind" {
			return res, p.bind(tenant, eip, sip, op.Weight)
		}
		return res, p.unbind(tenant, eip, sip)
	case "set_permit":
		ip, p, err := c.grantedAddr(op.Target, prior)
		if err != nil {
			return res, err
		}
		return res, p.setPermitList(tenant, ip, op.Entries, op.Groups...)
	case "permit", "revoke":
		ip, p, err := c.grantedAddr(op.Target, prior)
		if err != nil {
			return res, err
		}
		for _, e := range op.Entries {
			if op.Op == "permit" {
				err = p.permitEntry(tenant, ip, e)
			} else {
				err = p.revokeEntry(tenant, ip, e)
			}
			if err != nil {
				return res, err
			}
		}
	case "set_qos":
		return res, c.providers[op.Provider].setQoS(tenant, op.Region, op.Bandwidth)
	case "set_potato":
		c.providers[op.Provider].setPotato(tenant, op.Policy)
	case "create_group":
		members := make([]EIP, 0, len(op.Members))
		for _, m := range op.Members {
			ip, err := batchAddr(m, prior)
			if err != nil {
				return res, err
			}
			members = append(members, ip)
		}
		return res, c.createGroup(tenant, op.Name, members...)
	case "register_name":
		ip, err := batchAddr(op.Target, prior)
		if err != nil {
			return res, err
		}
		return res, c.registerName(tenant, op.Name, ip)
	}
	return res, nil
}

// intentOp translates one successfully applied batch op into its journal
// record, resolving "$i" back-references against the results before it.
// The verb wrappers record their own ops; this is the batch path's
// equivalent, producing the same wire shapes so replay cannot tell the
// two apart.
func (c *Cloud) intentOp(op *BatchOp, res BatchResult, prior []BatchResult) (intent.Op, bool) {
	ip := func(s string) addr.IP {
		a, _ := batchAddr(s, prior) // already resolved once by applyOp
		return a
	}
	switch op.Op {
	case "request_eip":
		n, ok := c.G.Node(op.VM)
		if !ok {
			return intent.Op{}, false
		}
		return intent.Op{Verb: intent.OpRequestEIP, VM: string(op.VM), Provider: n.Provider, Region: n.Region, Addr: res.Addr}, true
	case "release_eip":
		return intent.Op{Verb: intent.OpReleaseEIP, Addr: ip(op.EIP)}, true
	case "request_sip":
		return intent.Op{Verb: intent.OpRequestSIP, Provider: op.Provider, Addr: res.Addr}, true
	case "release_sip":
		return intent.Op{Verb: intent.OpReleaseSIP, Addr: ip(op.SIP)}, true
	case "bind":
		return intent.Op{Verb: intent.OpBind, EIP: ip(op.EIP), SIP: ip(op.SIP), Weight: op.Weight}, true
	case "unbind":
		return intent.Op{Verb: intent.OpUnbind, EIP: ip(op.EIP), SIP: ip(op.SIP)}, true
	case "set_permit":
		target := ip(op.Target)
		prov := ""
		if p, ok := c.blockOwner(target); ok {
			prov = p.Name
		}
		return intent.Op{Verb: intent.OpSetPermit, Provider: prov, Target: target, Entries: append([]permit.Entry(nil), op.Entries...), Groups: op.Groups}, true
	case "permit":
		return intent.Op{Verb: intent.OpPermit, Target: ip(op.Target), Entries: append([]permit.Entry(nil), op.Entries...)}, true
	case "revoke":
		return intent.Op{Verb: intent.OpRevoke, Target: ip(op.Target), Entries: append([]permit.Entry(nil), op.Entries...)}, true
	case "set_qos":
		return intent.Op{Verb: intent.OpSetQoS, Provider: op.Provider, Region: op.Region, Bps: op.Bandwidth}, true
	case "set_potato":
		return intent.Op{Verb: intent.OpSetPotato, Provider: op.Provider, Policy: op.Policy.String()}, true
	case "create_group":
		members := make([]addr.IP, 0, len(op.Members))
		for _, m := range op.Members {
			members = append(members, ip(m))
		}
		// Batch create_group targets the cloud-level (cross-provider)
		// group namespace, so Provider stays empty.
		return intent.Op{Verb: intent.OpCreateGroup, Name: op.Name, Members: members}, true
	case "register_name":
		return intent.Op{Verb: intent.OpRegisterName, Name: op.Name, Addr: ip(op.Target)}, true
	}
	return intent.Op{}, false
}
