package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"declnet/internal/addr"
	"declnet/internal/permit"
	"declnet/internal/topo"
)

// parityOp is one pre-generated tenant mutation: pure data, so the
// sharded (concurrent) and single-shard (sequential) arms replay exactly
// the same schedule.
type parityOp struct {
	kind  int // 0 grant, 1 release, 2 set_permit, 3 permit, 4 revoke, 5 set_qos
	host  int // host selector for grants / permit-source selector
	idx   int // granted-EIP selector for release/permit targets
	extra uint32
	bw    float64
}

// parityTenant confines one tenant to one (provider, region): its region's
// sequential address pool is then touched by no one else, so the EIPs it
// receives are identical whether its script runs interleaved with other
// tenants (sharded arm) or alone (single-shard arm).
type parityTenant struct {
	name   string
	prov   string
	region string
	hosts  []topo.NodeID
}

func parityTenants(w *topo.Fig1World) []parityTenant {
	var ts []parityTenant
	add := func(cloud, region string) {
		t := parityTenant{
			name:   "t-" + cloud + "-" + region,
			prov:   cloud,
			region: region,
		}
		for _, az := range []string{"az1", "az2"} {
			for i := 1; i <= 2; i++ {
				t.hosts = append(t.hosts, topo.HostID(cloud, region, az, i))
			}
		}
		ts = append(ts, t)
	}
	for _, r := range w.RegionsA {
		add(w.CloudA, r)
	}
	for _, r := range w.RegionsB {
		add(w.CloudB, r)
	}
	return ts
}

// runParityScript replays one tenant's script against a cloud, returning
// the tenant's surviving granted EIPs in grant order.
func runParityScript(t *testing.T, c *Cloud, pt parityTenant, script []parityOp) []EIP {
	t.Helper()
	p, ok := c.Provider(pt.prov)
	if !ok {
		t.Errorf("%s: no provider %q", pt.name, pt.prov)
		return nil
	}
	var granted []EIP
	for _, op := range script {
		switch op.kind {
		case 0:
			eip, err := p.RequestEIP(pt.name, pt.hosts[op.host%len(pt.hosts)])
			if err != nil {
				t.Errorf("%s: grant: %v", pt.name, err)
				return granted
			}
			granted = append(granted, eip)
		case 1:
			if len(granted) == 0 {
				continue
			}
			i := op.idx % len(granted)
			if err := p.ReleaseEIP(pt.name, granted[i]); err != nil {
				t.Errorf("%s: release: %v", pt.name, err)
				return granted
			}
			granted = append(granted[:i], granted[i+1:]...)
		case 2:
			if len(granted) < 2 {
				continue
			}
			target := granted[op.idx%len(granted)]
			src := granted[op.host%len(granted)]
			entries := []permit.Entry{
				addr.NewPrefix(src, 32),
				addr.NewPrefix(addr.IP(0xc0a80000|op.extra&0xffff), 32), // 192.168.x.x filler
			}
			if err := p.SetPermitList(pt.name, target, entries); err != nil {
				t.Errorf("%s: set_permit: %v", pt.name, err)
				return granted
			}
		case 3:
			if len(granted) == 0 {
				continue
			}
			target := granted[op.idx%len(granted)]
			if err := p.Permit(pt.name, target, addr.NewPrefix(addr.IP(0xc0a80000|op.extra&0xffff), 32)); err != nil {
				t.Errorf("%s: permit: %v", pt.name, err)
				return granted
			}
		case 4:
			if len(granted) == 0 {
				continue
			}
			target := granted[op.idx%len(granted)]
			// Revoking an entry that may not exist is a valid no-op.
			_ = p.Revoke(pt.name, target, addr.NewPrefix(addr.IP(0xc0a80000|op.extra&0xffff), 32))
		case 5:
			if err := p.SetQoS(pt.name, pt.region, op.bw); err != nil {
				t.Errorf("%s: set_qos: %v", pt.name, err)
				return granted
			}
		}
	}
	return granted
}

// TestPropertyShardParity replays identical randomized verb schedules —
// one tenant per (provider, region) shard — against the sharded build
// (every tenant's script on its own goroutine, shards genuinely
// contended) and the single-shard build (scripts applied sequentially),
// then asserts the two control planes are indistinguishable: the same
// granted addresses, the same endpoint tables, the same permit verdicts
// for every intra- and cross-tenant pair, and the same Explain verdict
// chains. Sharding is a pure concurrency refactor; any semantic drift is
// a bug this test exists to catch. CI runs it under -race.
func TestPropertyShardParity(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			mkCloud := func(single bool) (*Cloud, *topo.Fig1World) {
				w := topo.BuildFig1(2)
				var c *Cloud
				if single {
					c = NewSingleShardCloud(seed, w.Graph)
				} else {
					c = NewCloud(seed, w.Graph)
				}
				for _, spec := range []struct{ name, eip, sip string }{
					{w.CloudA, "100.64.0.0/10", "100.127.0.0/16"},
					{w.CloudB, "104.0.0.0/8", "104.255.0.0/16"},
				} {
					if _, err := c.AddProvider(spec.name, Config{
						EIPBase: pfx(spec.eip), SIPBase: pfx(spec.sip),
					}); err != nil {
						t.Fatal(err)
					}
				}
				return c, w
			}
			sharded, ws := mkCloud(false)
			serial, _ := mkCloud(true)

			tenants := parityTenants(ws)
			const opsPerTenant = 120
			scripts := make([][]parityOp, len(tenants))
			for i := range tenants {
				rng := rand.New(rand.NewSource(seed*1000 + int64(i)))
				for j := 0; j < opsPerTenant; j++ {
					scripts[i] = append(scripts[i], parityOp{
						kind:  rng.Intn(6),
						host:  rng.Intn(1 << 16),
						idx:   rng.Intn(1 << 16),
						extra: rng.Uint32(),
						bw:    float64(1+rng.Intn(10)) * 1e9,
					})
				}
			}

			// Sharded arm: every tenant mutates its own shard concurrently.
			grantedSharded := make([][]EIP, len(tenants))
			var wg sync.WaitGroup
			for i := range tenants {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					grantedSharded[i] = runParityScript(t, sharded, tenants[i], scripts[i])
				}(i)
			}
			wg.Wait()
			if t.Failed() {
				t.FailNow()
			}

			// Single-shard arm: same scripts, strictly sequential.
			grantedSerial := make([][]EIP, len(tenants))
			for i := range tenants {
				grantedSerial[i] = runParityScript(t, serial, tenants[i], scripts[i])
			}

			if sharded.Shards().Len() < len(tenants) {
				t.Errorf("sharded arm materialized %d shards, want >= %d", sharded.Shards().Len(), len(tenants))
			}
			if serial.Shards().Len() != 1 {
				t.Errorf("single-shard arm reports %d shards, want 1", serial.Shards().Len())
			}

			// Address views agree: same grants per tenant, same lookup
			// results, same per-provider endpoint counts.
			var all []EIP
			for i := range tenants {
				a, b := grantedSharded[i], grantedSerial[i]
				if len(a) != len(b) {
					t.Fatalf("%s: sharded granted %d EIPs, serial %d", tenants[i].name, len(a), len(b))
				}
				for j := range a {
					if a[j] != b[j] {
						t.Fatalf("%s: grant %d: sharded %s, serial %s", tenants[i].name, j, a[j], b[j])
					}
					ns, okS := mustProv(t, sharded, tenants[i].prov).Lookup(a[j])
					nu, okU := mustProv(t, serial, tenants[i].prov).Lookup(b[j])
					if okS != okU || ns != nu {
						t.Fatalf("%s: lookup %s: sharded (%s,%v), serial (%s,%v)",
							tenants[i].name, a[j], ns, okS, nu, okU)
					}
					all = append(all, a[j])
				}
			}
			for _, prov := range []string{ws.CloudA, ws.CloudB} {
				cs, cu := mustProv(t, sharded, prov).EndpointCount(), mustProv(t, serial, prov).EndpointCount()
				if cs != cu {
					t.Errorf("%s: endpoint count sharded %d, serial %d", prov, cs, cu)
				}
			}

			// Permit verdicts agree for every (src, dst) pair, including
			// cross-tenant and cross-provider pairs.
			for _, src := range all {
				for _, dst := range all {
					vs, vu := sharded.Admitted(src, dst), serial.Admitted(src, dst)
					if vs != vu {
						t.Fatalf("admitted(%s, %s): sharded %v, serial %v", src, dst, vs, vu)
					}
				}
			}

			// Explain verdict chains agree for each tenant's own pairs.
			for i := range tenants {
				g := grantedSharded[i]
				for j := 0; j+1 < len(g) && j < 4; j++ {
					es, errS := sharded.Explain(tenants[i].name, g[j], g[j+1])
					eu, errU := serial.Explain(tenants[i].name, g[j], g[j+1])
					if (errS == nil) != (errU == nil) {
						t.Fatalf("%s: explain err: sharded %v, serial %v", tenants[i].name, errS, errU)
					}
					if errS != nil {
						continue
					}
					if es.Reachable != eu.Reachable || es.RootCause != eu.RootCause {
						t.Fatalf("%s: explain %s->%s: sharded (%v,%q), serial (%v,%q)",
							tenants[i].name, g[j], g[j+1], es.Reachable, es.RootCause, eu.Reachable, eu.RootCause)
					}
					if len(es.Steps) != len(eu.Steps) {
						t.Fatalf("%s: explain steps: sharded %d, serial %d", tenants[i].name, len(es.Steps), len(eu.Steps))
					}
					for k := range es.Steps {
						if es.Steps[k].Verdict != eu.Steps[k].Verdict || es.Steps[k].Cause != eu.Steps[k].Cause {
							t.Fatalf("%s: explain step %d: sharded (%s,%q), serial (%s,%q)", tenants[i].name, k,
								es.Steps[k].Verdict, es.Steps[k].Cause, eu.Steps[k].Verdict, eu.Steps[k].Cause)
						}
					}
				}
			}
		})
	}
}

func mustProv(t *testing.T, c *Cloud, name string) *Provider {
	t.Helper()
	p, ok := c.Provider(name)
	if !ok {
		t.Fatalf("no provider %q", name)
	}
	return p
}

// TestCrossShardConnectOrdering pins the deadlock-freedom property of the
// cross-shard read protocol directly: two goroutines issue opposing
// cross-shard reads (A->B and B->A) in a tight loop while two writers
// storm each shard. With unordered locking this interleaving deadlocks
// almost immediately; with deterministic (tenant, region) ordering it
// must complete.
func TestCrossShardConnectOrdering(t *testing.T) {
	c, w, pa, pb, _ := fig1Cloud(t)
	a, err := pa.RequestEIP("acme", topo.HostID(w.CloudA, w.RegionsA[0], "az1", 1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := pb.RequestEIP("acme", topo.HostID(w.CloudB, w.RegionsB[0], "az1", 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := pa.SetPermitList("acme", a, []permit.Entry{addr.NewPrefix(b, 32)}); err != nil {
		t.Fatal(err)
	}
	if err := pb.SetPermitList("acme", b, []permit.Entry{addr.NewPrefix(a, 32)}); err != nil {
		t.Fatal(err)
	}
	const iters = 300
	var wg sync.WaitGroup
	wg.Add(4)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			if !c.Admitted(a, b) {
				t.Error("b->a verdict flipped")
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			if !c.Admitted(b, a) {
				t.Error("a->b verdict flipped")
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			e := addr.NewPrefix(addr.IP(0xc0a80000|uint32(i)), 32)
			if err := pa.Permit("acme", a, e); err != nil {
				t.Errorf("permit storm a: %v", err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			e := addr.NewPrefix(addr.IP(0xc0a90000|uint32(i)), 32)
			if err := pb.Permit("acme", b, e); err != nil {
				t.Errorf("permit storm b: %v", err)
				return
			}
		}
	}()
	wg.Wait()
}
