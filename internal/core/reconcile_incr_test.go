package core

import (
	"fmt"
	"math/rand"
	"testing"

	"declnet/internal/addr"
	"declnet/internal/intent"
	"declnet/internal/topo"
)

// TestSweepScopesNoAlias pins the fix for the reconciler's old
// append(p.Regions(), "") pattern: scope lists and region lists must
// never share a backing array, so mutating one can never corrupt a
// scope another goroutine is sweeping.
func TestSweepScopesNoAlias(t *testing.T) {
	_, _, pa, _, _ := fig1Cloud(t)
	scopes := pa.sweepScopes()
	regions := pa.Regions()
	if len(scopes) != len(regions)+1 || scopes[len(scopes)-1] != "" {
		t.Fatalf("sweepScopes = %v, want regions %v plus \"\"", scopes, regions)
	}
	for i, r := range regions {
		if scopes[i] != r {
			t.Fatalf("sweepScopes[%d] = %q, want %q", i, scopes[i], r)
		}
	}
	// The historical hazard: appending to one returned slice must not
	// rewrite another's contents.
	s1 := pa.sweepScopes()
	_ = append(pa.Regions(), "clobber")
	_ = append(pa.sweepScopes(), "clobber")
	for i := range s1 {
		if s1[i] != scopes[i] {
			t.Fatalf("scope slice aliased: index %d became %q", i, s1[i])
		}
	}
	s2 := pa.sweepScopes()
	s2[len(s2)-1] = "mutated"
	if got := pa.sweepScopes(); got[len(got)-1] != "" {
		t.Fatal("mutating a returned scope slice leaked into a later call")
	}
}

// incrWorld is one subject world of the parity property test.
type incrWorld struct {
	c      *Cloud
	w      *topo.Fig1World
	pa, pb *Provider
	l      *intent.Log
	rIncr  *Reconciler // incremental sweep under test
	rFull  *Reconciler // full-scan oracle on the same world
	eip1   addr.IP
	eip2   addr.IP
	dst    addr.IP
	sip    addr.IP
}

const incrK = 3

func (iw *incrWorld) buildReconcilers(t *testing.T) {
	t.Helper()
	var err error
	if iw.rIncr, err = iw.c.EnableReconciler(ReconcilerConfig{AntiEntropyK: incrK}); err != nil {
		t.Fatal(err)
	}
	// A cloud holds one reconciler; the oracle is built directly so the
	// same world can be swept both ways.
	iw.rFull = &Reconciler{cloud: iw.c, cfg: ReconcilerConfig{RepairBudget: 256}}
}

// TestIncrementalSweepParity is the property test: under randomized
// journaled mutation, chaos-hook drift, and crash recovery, K+1
// incremental sweeps must leave nothing for a full-scan sweep to find,
// and the incremental (cached) digest must equal a cold full walk.
func TestIncrementalSweepParity(t *testing.T) {
	dir := t.TempDir()
	iw := &incrWorld{}
	var err error
	iw.c, iw.w, iw.pa, iw.pb, _ = fig1Cloud(t)
	if iw.l, err = intent.Open(dir, intent.Options{}); err != nil {
		t.Fatal(err)
	}
	iw.c.EnableIntent(iw.l)
	iw.eip1, iw.eip2, iw.dst, iw.sip = populate(t, iw.c, iw.w, iw.pa, iw.pb)
	iw.buildReconcilers(t)

	rng := rand.New(rand.NewSource(11))
	const rounds = 24
	for round := 0; round < rounds; round++ {
		// Journaled mutations: marked dirty via the record hook.
		for n := rng.Intn(3); n >= 0; n-- {
			switch rng.Intn(4) {
			case 0:
				p := pfx(fmt.Sprintf("10.%d.0.0/16", rng.Intn(40)))
				if err := iw.pa.Permit("acme", iw.eip1, p); err != nil {
					t.Fatal(err)
				}
			case 1:
				entries := []addr.Prefix{addr.NewPrefix(iw.eip1, 32)}
				if rng.Intn(2) == 0 {
					entries = append(entries, pfx(fmt.Sprintf("172.16.%d.0/24", rng.Intn(40))))
				}
				if err := iw.pb.SetPermitList("acme", iw.dst, entries); err != nil {
					t.Fatal(err)
				}
			case 2:
				if err := iw.pa.SetQoS("acme", iw.w.RegionsA[0], float64(1+rng.Intn(9))*1e8); err != nil {
					t.Fatal(err)
				}
			case 3:
				if err := iw.pa.Unbind("acme", iw.eip2, iw.sip); err == nil {
					if err := iw.pa.Bind("acme", iw.eip2, iw.sip, 1+rng.Intn(3)); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		// Chaos drift: bumps the digest tracker, never the dirty sets —
		// only the anti-entropy rotation can find it.
		switch rng.Intn(4) {
		case 0:
			iw.c.DriftWipePermit(iw.dst)
		case 1:
			iw.c.DriftWipePermit(iw.sip)
		case 2:
			iw.c.DriftUnbind(iw.sip, iw.eip1)
		case 3:
			iw.c.DriftZeroQuota(iw.pa.Name, "acme", iw.w.RegionsA[0])
		}

		// Crash every 4th round mid-divergence: abandon the log
		// un-Closed, recover a fresh world with parallel restore.
		if round%4 == 3 {
			l2, err := intent.Open(dir, intent.Options{})
			if err != nil {
				t.Fatal(err)
			}
			c2, w2, pa2, pb2, _ := fig1Cloud(t)
			if err := c2.RestoreIntentWorkers(l2.State(), 4); err != nil {
				t.Fatal(err)
			}
			c2.EnableIntent(l2)
			iw.c, iw.w, iw.pa, iw.pb, iw.l = c2, w2, pa2, pb2, l2
			iw.buildReconcilers(t)
		}

		// K sweeps cover every anti-entropy phase; +1 for the repair
		// confirm. After that a full scan must find a converged world.
		for i := 0; i < incrK+1; i++ {
			iw.rIncr.RunSweep()
		}
		if res := iw.rFull.RunSweep(); sweepWork(res) != (SweepResult{}) {
			t.Fatalf("round %d: full sweep found work after incremental convergence: %+v", round, res)
		}
		if inc, full := iw.c.StateDigest(), iw.c.StateDigestFull(); inc != full {
			t.Fatalf("round %d: incremental digest %s != full walk %s", round, inc, full)
		}
	}
}

// TestChaosDriftDetectedWithinK pins the anti-entropy detection bound:
// drift injected behind the recorder's back — no journal record, no
// dirty mark — is found and repaired within K incremental sweeps.
func TestChaosDriftDetectedWithinK(t *testing.T) {
	dir := t.TempDir()
	c, w, pa, pb, _ := fig1Cloud(t)
	l, err := intent.Open(dir, intent.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	c.EnableIntent(l)
	eip1, _, dst, _ := populate(t, c, w, pa, pb)
	const k = 4
	r, err := c.EnableReconciler(ReconcilerConfig{AntiEntropyK: k})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < k+1; i++ {
		r.RunSweep() // drain setup dirt, converge
	}
	if !c.Admitted(eip1, dst) {
		t.Fatal("world not admitting before drift injection")
	}
	if !c.DriftWipePermit(dst) {
		t.Fatal("DriftWipePermit failed")
	}
	if c.Admitted(eip1, dst) {
		t.Fatal("drift injection did not break admission")
	}
	sweeps, repaired, dirtyHits, aeScanned := 0, 0, 0, 0
	for ; sweeps < k && repaired == 0; sweeps++ {
		res := r.RunSweep()
		repaired += res.Repaired
		dirtyHits += res.DirtyHits
		aeScanned += res.AntiEntropyScanned
	}
	if repaired == 0 {
		t.Fatalf("chaos drift not repaired within K=%d sweeps", k)
	}
	if !c.Admitted(eip1, dst) {
		t.Error("repair did not restore admission")
	}
	// The detection must have come from the rotation, not a dirty mark:
	// nothing journaled between injection and repair.
	if dirtyHits != 0 {
		t.Errorf("chaos-only drift produced %d dirty hits, want 0", dirtyHits)
	}
	if aeScanned == 0 {
		t.Error("no anti-entropy scanning during detection window")
	}
	t.Logf("chaos drift repaired after %d/%d sweeps, %d anti-entropy checks", sweeps, k, aeScanned)
}

// TestRestoreIntentWorkersParallel pins the parallel recovery path to
// the serial contract: same digest, same pool cursors, regardless of
// worker count.
func TestRestoreIntentWorkersParallel(t *testing.T) {
	dir := t.TempDir()
	c, w, pa, pb, _ := fig1Cloud(t)
	l, err := intent.Open(dir, intent.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c.EnableIntent(l)
	eip1, _, dst, _ := populate(t, c, w, pa, pb)
	want := c.StateDigestFull()
	// Crash: no Close.

	l2, err := intent.Open(dir, intent.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	for _, workers := range []int{1, 4} {
		c2, w2, pa2, _, _ := fig1Cloud(t)
		if err := c2.RestoreIntentWorkers(l2.State(), workers); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got := c2.StateDigestFull(); got != want {
			t.Fatalf("workers=%d: digest mismatch\n got %s\nwant %s", workers, got, want)
		}
		if !c2.Admitted(eip1, dst) {
			t.Errorf("workers=%d: recovered world rejects a declared-permitted flow", workers)
		}
		// Pool cursors restored: the next grant matches the live world's.
		nextLive, err := pa.RequestEIP("acme", topo.HostID(w.CloudA, w.RegionsA[0], "az2", 2))
		if err != nil {
			t.Fatal(err)
		}
		nextRec, err := pa2.RequestEIP("acme", topo.HostID(w2.CloudA, w2.RegionsA[0], "az2", 2))
		if err != nil {
			t.Fatal(err)
		}
		if nextLive != nextRec {
			t.Fatalf("workers=%d: pool divergence: live %s, recovered %s", workers, nextLive, nextRec)
		}
		// Rewind the live pool so the next loop iteration compares from
		// the same cursor.
		if err := pa.ReleaseEIP("acme", nextLive); err != nil {
			t.Fatal(err)
		}
	}
}
