package core

import (
	"math"
	"strings"
	"testing"
	"time"

	"declnet/internal/addr"
	"declnet/internal/permit"
	"declnet/internal/qos"
	"declnet/internal/topo"
)

func pfx(s string) addr.Prefix { return addr.MustParsePrefix(s) }

// fig1Cloud builds the Fig-1 world with providers for both clouds and the
// on-prem site.
func fig1Cloud(t *testing.T) (*Cloud, *topo.Fig1World, *Provider, *Provider, *Provider) {
	t.Helper()
	w := topo.BuildFig1(2)
	c := NewCloud(1, w.Graph)
	pa, err := c.AddProvider(w.CloudA, Config{
		EIPBase: pfx("100.64.0.0/10"),
		SIPBase: pfx("100.127.0.0/16"),
	})
	if err != nil {
		t.Fatal(err)
	}
	pb, err := c.AddProvider(w.CloudB, Config{
		EIPBase: pfx("104.0.0.0/8"),
		SIPBase: pfx("104.255.0.0/16"),
	})
	if err != nil {
		t.Fatal(err)
	}
	po, err := c.AddProvider("onprem", Config{
		EIPBase: pfx("108.0.0.0/8"),
		SIPBase: pfx("108.255.0.0/16"),
	})
	if err != nil {
		t.Fatal(err)
	}
	return c, w, pa, pb, po
}

func TestRequestEIPValidation(t *testing.T) {
	c, w, pa, _, _ := fig1Cloud(t)
	_ = c
	vm := topo.HostID(w.CloudA, w.RegionsA[0], "az1", 1)
	eip, err := pa.RequestEIP("acme", vm)
	if err != nil {
		t.Fatal(err)
	}
	if eip == 0 {
		t.Fatal("zero EIP granted")
	}
	// Region block contains the EIP.
	block, ok := pa.RegionBlock(w.RegionsA[0])
	if !ok || !block.Contains(eip) {
		t.Fatalf("EIP %s outside region block %s", eip, block)
	}
	if _, err := pa.RequestEIP("acme", "no-such-vm"); err == nil {
		t.Fatal("unknown VM granted an EIP")
	}
	if _, err := pa.RequestEIP("acme", topo.RegionRouterID(w.CloudA, w.RegionsA[0])); err == nil {
		t.Fatal("non-host node granted an EIP")
	}
	// A VM of cloud B cannot get an EIP from provider A.
	if _, err := pa.RequestEIP("acme", topo.HostID(w.CloudB, w.RegionsB[0], "az1", 1)); err == nil {
		t.Fatal("cross-provider EIP grant succeeded")
	}
}

func TestDefaultOffEndToEnd(t *testing.T) {
	c, w, pa, pb, _ := fig1Cloud(t)
	src, _ := pa.RequestEIP("acme", topo.HostID(w.CloudA, w.RegionsA[0], "az1", 1))
	dst, _ := pb.RequestEIP("acme", topo.HostID(w.CloudB, w.RegionsB[0], "az1", 1))
	// No permit list: connection refused.
	if _, err := c.Connect("acme", src, dst, ConnectOpts{SizeBytes: 1000}); err == nil {
		t.Fatal("default-off violated: connect without permit list succeeded")
	}
	if c.Admitted(src, dst) {
		t.Fatal("Admitted true without permit list")
	}
	// Permit the source; now it flows.
	if err := pb.SetPermitList("acme", dst, []permit.Entry{addr.NewPrefix(src, 32)}); err != nil {
		t.Fatal(err)
	}
	var fct time.Duration
	conn, err := c.Connect("acme", src, dst, ConnectOpts{
		SizeBytes: 1e6,
		OnDone:    func(d time.Duration) { fct = d },
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Eng.Run()
	if fct == 0 {
		t.Fatal("flow never completed")
	}
	conn.Close()
}

func TestCrossTenantIsolation(t *testing.T) {
	c, w, pa, pb, _ := fig1Cloud(t)
	victim, _ := pb.RequestEIP("acme", topo.HostID(w.CloudB, w.RegionsB[0], "az1", 1))
	attacker, _ := pa.RequestEIP("evil", topo.HostID(w.CloudA, w.RegionsA[0], "az1", 1))
	friend, _ := pa.RequestEIP("acme", topo.HostID(w.CloudA, w.RegionsA[0], "az1", 2))
	pb.SetPermitList("acme", victim, []permit.Entry{addr.NewPrefix(friend, 32)})
	if c.Admitted(attacker, victim) {
		t.Fatal("unpermitted tenant admitted")
	}
	if !c.Admitted(friend, victim) {
		t.Fatal("permitted source rejected")
	}
	// evil cannot edit acme's permit list.
	if err := pb.SetPermitList("evil", victim, []permit.Entry{addr.NewPrefix(attacker, 32)}); err == nil {
		t.Fatal("cross-tenant permit-list mutation succeeded")
	}
}

func TestSIPLoadBalancing(t *testing.T) {
	c, w, pa, pb, _ := fig1Cloud(t)
	// Two backends in cloud B behind one SIP; client in cloud A.
	be1, _ := pb.RequestEIP("acme", topo.HostID(w.CloudB, w.RegionsB[0], "az1", 1))
	be2, _ := pb.RequestEIP("acme", topo.HostID(w.CloudB, w.RegionsB[0], "az2", 1))
	sip, err := pb.RequestSIP("acme")
	if err != nil {
		t.Fatal(err)
	}
	if err := pb.Bind("acme", be1, sip, 1); err != nil {
		t.Fatal(err)
	}
	if err := pb.Bind("acme", be2, sip, 1); err != nil {
		t.Fatal(err)
	}
	client, _ := pa.RequestEIP("acme", topo.HostID(w.CloudA, w.RegionsA[0], "az1", 1))
	pb.SetPermitList("acme", sip, []permit.Entry{addr.NewPrefix(client, 32)})
	hits := map[EIP]int{}
	for i := 0; i < 10; i++ {
		conn, err := c.Connect("acme", client, sip, ConnectOpts{SizeBytes: -1})
		if err != nil {
			t.Fatal(err)
		}
		hits[conn.DstEIP]++
		conn.Close()
	}
	if hits[be1] != 5 || hits[be2] != 5 {
		t.Fatalf("SIP balancing = %v, want 5/5", hits)
	}
}

func TestSIPWeightsAndHealth(t *testing.T) {
	c, w, _, pb, _ := fig1Cloud(t)
	be1, _ := pb.RequestEIP("acme", topo.HostID(w.CloudB, w.RegionsB[0], "az1", 1))
	be2, _ := pb.RequestEIP("acme", topo.HostID(w.CloudB, w.RegionsB[0], "az2", 1))
	sip, _ := pb.RequestSIP("acme")
	pb.Bind("acme", be1, sip, 3)
	pb.Bind("acme", be2, sip, 1)
	client, _ := pb.RequestEIP("acme", topo.HostID(w.CloudB, w.RegionsB[1], "az1", 1))
	pb.SetPermitList("acme", sip, []permit.Entry{addr.NewPrefix(client, 32)})
	hits := map[EIP]int{}
	for i := 0; i < 8; i++ {
		conn, err := c.Connect("acme", client, sip, ConnectOpts{SizeBytes: -1})
		if err != nil {
			t.Fatal(err)
		}
		hits[conn.DstEIP]++
		conn.Close()
	}
	if hits[be1] != 6 || hits[be2] != 2 {
		t.Fatalf("weighted balancing = %v, want 6/2", hits)
	}
	// Health failure removes be1 from rotation.
	pb.MarkHealth(be1, false)
	for i := 0; i < 4; i++ {
		conn, err := c.Connect("acme", client, sip, ConnectOpts{SizeBytes: -1})
		if err != nil {
			t.Fatal(err)
		}
		if conn.DstEIP != be2 {
			t.Fatal("unhealthy backend picked")
		}
		conn.Close()
	}
}

func TestGroupsExtension(t *testing.T) {
	c, w, _, pb, _ := fig1Cloud(t)
	a, _ := pb.RequestEIP("acme", topo.HostID(w.CloudB, w.RegionsB[0], "az1", 1))
	bb, _ := pb.RequestEIP("acme", topo.HostID(w.CloudB, w.RegionsB[0], "az1", 2))
	dst, _ := pb.RequestEIP("acme", topo.HostID(w.CloudB, w.RegionsB[0], "az2", 1))
	if err := pb.CreateGroup("acme", "web", a, bb); err != nil {
		t.Fatal(err)
	}
	if err := pb.SetPermitList("acme", dst, nil, "web"); err != nil {
		t.Fatal(err)
	}
	if !c.Admitted(a, dst) || !c.Admitted(bb, dst) {
		t.Fatal("group members not admitted")
	}
	if err := pb.SetPermitList("acme", dst, nil, "missing-group"); err == nil {
		t.Fatal("unknown group accepted")
	}
	// Groups may only contain the tenant's own endpoints.
	other, _ := pb.RequestEIP("rival", topo.HostID(w.CloudB, w.RegionsB[1], "az1", 1))
	if err := pb.CreateGroup("acme", "bad", other); err == nil {
		t.Fatal("foreign EIP accepted into group")
	}
}

func TestPotatoProfilesAffectPath(t *testing.T) {
	c, w, pa, pb, _ := fig1Cloud(t)
	src, _ := pa.RequestEIP("acme", topo.HostID(w.CloudA, w.RegionsA[0], "az1", 1))
	dst, _ := pb.RequestEIP("acme", topo.HostID(w.CloudB, w.RegionsB[0], "az1", 1))
	pb.SetPermitList("acme", dst, []permit.Entry{addr.NewPrefix(src, 32)})

	pa.SetPotato("acme", qos.HotPotato)
	hot, err := c.Connect("acme", src, dst, ConnectOpts{SizeBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	pa.SetPotato("acme", qos.Dedicated)
	ded, err := c.Connect("acme", src, dst, ConnectOpts{SizeBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	countKind := func(p topo.Path, k topo.LinkKind) int {
		n := 0
		for _, l := range p {
			if l.Kind == k {
				n++
			}
		}
		return n
	}
	if countKind(hot.Path, topo.Transit) == 0 {
		t.Fatal("hot-potato path avoided transit entirely")
	}
	if countKind(ded.Path, topo.Transit) != 0 {
		t.Fatal("dedicated path crossed transit")
	}
	hot.Close()
	ded.Close()
}

func TestRegionalQuotaEnforced(t *testing.T) {
	c, w, pa, pb, _ := fig1Cloud(t)
	src1, _ := pa.RequestEIP("acme", topo.HostID(w.CloudA, w.RegionsA[0], "az1", 1))
	src2, _ := pa.RequestEIP("acme", topo.HostID(w.CloudA, w.RegionsA[0], "az2", 1))
	dst, _ := pb.RequestEIP("acme", topo.HostID(w.CloudB, w.RegionsB[0], "az1", 1))
	pb.SetPermitList("acme", dst, []permit.Entry{pfx("100.64.0.0/10")})
	// 100 Mbps regional egress quota.
	if err := pa.SetQoS("acme", w.RegionsA[0], 100e6); err != nil {
		t.Fatal(err)
	}
	c1, err := c.Connect("acme", src1, dst, ConnectOpts{SizeBytes: -1, Demand: 10e9})
	if err != nil {
		t.Fatal(err)
	}
	c2, err := c.Connect("acme", src2, dst, ConnectOpts{SizeBytes: -1, Demand: 10e9})
	if err != nil {
		t.Fatal(err)
	}
	c.Eng.RunUntil(c.Eng.Now() + 500*time.Millisecond)
	total := c1.Flow.Rate() + c2.Flow.Rate()
	if total > 100e6*1.02 {
		t.Fatalf("regional quota exceeded: %v bps", total)
	}
	if total < 100e6*0.9 {
		t.Fatalf("quota badly underutilized: %v bps", total)
	}
	c1.Close()
	c2.Close()
	if err := pa.SetQoS("acme", "mars", 1); err == nil {
		t.Fatal("unknown region accepted")
	}
}

func TestVMEgressCap(t *testing.T) {
	c, w, pa, pb, _ := fig1Cloud(t)
	src, _ := pa.RequestEIP("acme", topo.HostID(w.CloudA, w.RegionsA[0], "az1", 1))
	dst, _ := pb.RequestEIP("acme", topo.HostID(w.CloudB, w.RegionsB[0], "az1", 1))
	pb.SetPermitList("acme", dst, []permit.Entry{addr.NewPrefix(src, 32)})
	if err := pa.SetVMEgressCap("acme", src, 50e6); err != nil {
		t.Fatal(err)
	}
	conn, err := c.Connect("acme", src, dst, ConnectOpts{SizeBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	if got := conn.Flow.Rate(); math.Abs(got-50e6) > 1e3 {
		t.Fatalf("VM egress cap: rate = %v, want 50Mbps", got)
	}
	conn.Close()
}

func TestReleaseEIPTearsDownState(t *testing.T) {
	c, w, _, pb, _ := fig1Cloud(t)
	be, _ := pb.RequestEIP("acme", topo.HostID(w.CloudB, w.RegionsB[0], "az1", 1))
	sip, _ := pb.RequestSIP("acme")
	pb.Bind("acme", be, sip, 1)
	pb.SetPermitList("acme", be, []permit.Entry{pfx("0.0.0.0/0")})
	if err := pb.ReleaseEIP("acme", be); err != nil {
		t.Fatal(err)
	}
	// Permit state gone, balancer drained, address reusable.
	if c.Admitted(addr.MustParseIP("1.2.3.4"), be) {
		t.Fatal("released EIP still admits traffic")
	}
	bal, _ := pb.Service(sip)
	if len(bal.Backends()) != 0 {
		t.Fatal("released EIP still bound to SIP")
	}
	be2, _ := pb.RequestEIP("acme", topo.HostID(w.CloudB, w.RegionsB[0], "az1", 2))
	if be2 != be {
		t.Fatalf("address not recycled: %s vs %s", be2, be)
	}
	if err := pb.ReleaseEIP("acme", be2); err != nil {
		t.Fatal(err)
	}
	if err := pb.ReleaseEIP("acme", be2); err == nil {
		t.Fatal("double release succeeded")
	}
}

func TestProbe(t *testing.T) {
	c, w, pa, pb, _ := fig1Cloud(t)
	src, _ := pa.RequestEIP("acme", topo.HostID(w.CloudA, w.RegionsA[0], "az1", 1))
	dst, _ := pb.RequestEIP("acme", topo.HostID(w.CloudB, w.RegionsB[0], "az1", 1))
	if _, _, err := c.Probe("acme", src, dst); err == nil {
		t.Fatal("probe admitted without permit list")
	}
	pb.SetPermitList("acme", dst, []permit.Entry{addr.NewPrefix(src, 32)})
	rtt, _, err := c.Probe("acme", src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if rtt <= 0 {
		t.Fatalf("RTT = %v", rtt)
	}
}

func TestOnPremUniformAPI(t *testing.T) {
	// The same verbs work for on-prem endpoints — the multi-domain
	// uniformity claim of §5.
	c, w, pa, _, po := fig1Cloud(t)
	opHost := topo.NodeID("onprem/hq/host1")
	onprem, err := po.RequestEIP("acme", opHost)
	if err != nil {
		t.Fatal(err)
	}
	cloudVM, _ := pa.RequestEIP("acme", topo.HostID(w.CloudA, w.RegionsA[0], "az1", 1))
	po.SetPermitList("acme", onprem, []permit.Entry{addr.NewPrefix(cloudVM, 32)})
	conn, err := c.Connect("acme", cloudVM, onprem, ConnectOpts{SizeBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(conn.Path) == 0 {
		t.Fatal("empty path to on-prem")
	}
	conn.Close()
}

func TestDuplicateProvider(t *testing.T) {
	w := topo.BuildFig1(1)
	c := NewCloud(1, w.Graph)
	if _, err := c.AddProvider(w.CloudA, Config{EIPBase: pfx("100.64.0.0/10"), SIPBase: pfx("100.127.0.0/16")}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddProvider(w.CloudA, Config{EIPBase: pfx("104.0.0.0/8"), SIPBase: pfx("104.255.0.0/16")}); err == nil {
		t.Fatal("duplicate provider accepted")
	}
	if _, ok := c.Provider("nope"); ok {
		t.Fatal("unknown provider found")
	}
}

func TestFlatAddressNoAssumptions(t *testing.T) {
	// EIPs for different VMs in the same region are dense (aggregatable
	// by the provider) but the tenant-visible API never exposes structure:
	// two tenants' EIPs interleave in the same block.
	_, w, pa, _, _ := fig1Cloud(t)
	e1, _ := pa.RequestEIP("acme", topo.HostID(w.CloudA, w.RegionsA[0], "az1", 1))
	e2, _ := pa.RequestEIP("rival", topo.HostID(w.CloudA, w.RegionsA[0], "az1", 2))
	e3, _ := pa.RequestEIP("acme", topo.HostID(w.CloudA, w.RegionsA[0], "az2", 1))
	if e2 != e1+1 || e3 != e2+1 {
		t.Fatalf("region block not dense: %s %s %s", e1, e2, e3)
	}
	block, _ := pa.RegionBlock(w.RegionsA[0])
	for _, e := range []EIP{e1, e2, e3} {
		if !block.Contains(e) {
			t.Fatalf("EIP %s outside region block", e)
		}
	}
	if got := pa.EndpointCount(); got != 3 {
		t.Fatalf("EndpointCount = %d", got)
	}
}

func TestErrorsMentionDefaultOff(t *testing.T) {
	c, w, pa, pb, _ := fig1Cloud(t)
	src, _ := pa.RequestEIP("acme", topo.HostID(w.CloudA, w.RegionsA[0], "az1", 1))
	dst, _ := pb.RequestEIP("acme", topo.HostID(w.CloudB, w.RegionsB[0], "az1", 1))
	_, err := c.Connect("acme", src, dst, ConnectOpts{SizeBytes: 1})
	if err == nil || !strings.Contains(err.Error(), "default-off") {
		t.Fatalf("err = %v, want default-off mention", err)
	}
}
