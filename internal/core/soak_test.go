package core

import (
	"math/rand"
	"testing"
	"time"

	"declnet/internal/addr"
	"declnet/internal/topo"
)

// TestSoakRandomOps drives a random but deterministic interleaving of
// every Table-2 verb across three tenants and checks the security
// invariants that must hold at every step:
//
//   - isolation: a tenant is never admitted to another tenant's endpoint
//     unless that tenant explicitly permitted it,
//   - default-off: endpoints with no permit list admit nothing,
//   - hygiene: released EIPs stop admitting immediately, and recycled
//     addresses never inherit the previous owner's permit state.
func TestSoakRandomOps(t *testing.T) {
	w := topo.BuildFig1(4)
	c := NewCloud(99, w.Graph)
	pa, err := c.AddProvider(w.CloudA, Config{
		EIPBase: pfx("100.64.0.0/10"), SIPBase: pfx("100.127.0.0/16")})
	if err != nil {
		t.Fatal(err)
	}
	pb, err := c.AddProvider(w.CloudB, Config{
		EIPBase: pfx("104.0.0.0/8"), SIPBase: pfx("104.255.0.0/16")})
	if err != nil {
		t.Fatal(err)
	}
	tenants := []string{"red", "green", "blue"}
	rng := rand.New(rand.NewSource(7))

	// Model state mirrored outside the system under test.
	var live []*soakEP
	hostsA := w.Graph.HostsOf(w.CloudA, w.RegionsA[0])
	hostsB := w.Graph.HostsOf(w.CloudB, w.RegionsB[0])
	freeNodes := map[topo.NodeID]bool{}
	for _, h := range append(append([]*topo.Node{}, hostsA...), hostsB...) {
		freeNodes[h.ID] = true
	}
	pickFree := func() (topo.NodeID, bool) {
		for n := range freeNodes {
			return n, true
		}
		return "", false
	}
	provOf := func(n topo.NodeID) *Provider {
		node, _ := w.Graph.Node(n)
		if node.Provider == w.CloudA {
			return pa
		}
		return pb
	}

	const steps = 1500
	for i := 0; i < steps; i++ {
		switch op := rng.Intn(10); {
		case op < 4: // request a new endpoint
			node, ok := pickFree()
			if !ok {
				continue
			}
			tenant := tenants[rng.Intn(len(tenants))]
			p := provOf(node)
			eip, err := p.RequestEIP(tenant, node)
			if err != nil {
				t.Fatalf("step %d: RequestEIP: %v", i, err)
			}
			delete(freeNodes, node)
			live = append(live, &soakEP{eip: eip, tenant: tenant, prov: p, permits: map[EIP]bool{}})

		case op < 6 && len(live) > 1: // permit a random source
			dst := live[rng.Intn(len(live))]
			src := live[rng.Intn(len(live))]
			if err := dst.prov.Permit(dst.tenant, dst.eip, addr.NewPrefix(src.eip, 32)); err != nil {
				t.Fatalf("step %d: Permit: %v", i, err)
			}
			dst.permits[src.eip] = true

		case op < 7 && len(live) > 0: // revoke a permitted source
			dst := live[rng.Intn(len(live))]
			for src := range dst.permits {
				dst.prov.Revoke(dst.tenant, dst.eip, addr.NewPrefix(src, 32))
				delete(dst.permits, src)
				break
			}

		case op < 8 && len(live) > 0: // cross-tenant mutation must fail
			dst := live[rng.Intn(len(live))]
			other := tenants[rng.Intn(len(tenants))]
			if other == dst.tenant {
				continue
			}
			if err := dst.prov.Permit(other, dst.eip, addr.MustParsePrefix("0.0.0.0/0")); err == nil {
				t.Fatalf("step %d: tenant %q mutated %q's permit list", i, other, dst.tenant)
			}

		case op < 9 && len(live) > 0: // release an endpoint
			idx := rng.Intn(len(live))
			victim := live[idx]
			if err := victim.prov.ReleaseEIP(victim.tenant, victim.eip); err != nil {
				t.Fatalf("step %d: ReleaseEIP: %v", i, err)
			}
			node, _ := victim.prov.Lookup(victim.eip)
			_ = node
			// Find the node back from our bookkeeping: re-derive free set
			// by removing from live; node tracking happens below.
			live = append(live[:idx], live[idx+1:]...)
			// Mark its node free again (scan graph hosts for the EIP's
			// node is impossible post-release; track via closure instead).
			// We stored no node; recompute by brute force:
			refreshFree(freeNodes, hostsA, hostsB, live)

		default: // advance virtual time a little
			c.Eng.RunUntil(c.Eng.Now() + time.Duration(rng.Intn(50))*time.Millisecond)
		}

		// Invariant sweep over a sample of pairs.
		for k := 0; k < 5 && len(live) > 1; k++ {
			dst := live[rng.Intn(len(live))]
			src := live[rng.Intn(len(live))]
			got := c.Admitted(src.eip, dst.eip)
			want := dst.permits[src.eip]
			if got != want {
				t.Fatalf("step %d: Admitted(%s -> %s) = %v, model says %v",
					i, src.eip, dst.eip, got, want)
			}
		}
	}
	// Endpoint counts agree with the model at the end.
	total := pa.EndpointCount() + pb.EndpointCount()
	if total != len(live) {
		t.Fatalf("EndpointCount = %d, model has %d", total, len(live))
	}
}

// soakEP is the soak test's model of one granted endpoint.
type soakEP struct {
	eip     EIP
	tenant  string
	prov    *Provider
	permits map[EIP]bool // sources the owner explicitly allowed
}

// refreshFree rebuilds the free-node set from the live endpoint list.
func refreshFree(free map[topo.NodeID]bool, hostsA, hostsB []*topo.Node, live []*soakEP) {
	used := map[topo.NodeID]bool{}
	for _, e := range live {
		if n, ok := e.prov.Lookup(e.eip); ok {
			used[n] = true
		}
	}
	for _, h := range append(append([]*topo.Node{}, hostsA...), hostsB...) {
		if used[h.ID] {
			delete(free, h.ID)
		} else {
			free[h.ID] = true
		}
	}
}
