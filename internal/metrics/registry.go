package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// This file is the runtime metrics registry: concurrency-safe labeled
// counters, gauges, gauge functions, and histograms, snapshot-able in a
// deterministic order and exportable as Prometheus text exposition
// (GET /v1/metrics) or an expvar map. Unlike the experiment-side
// Histogram/Summary above — which live on a single goroutine inside the
// simulator — everything here is atomic, because declnetd's HTTP handlers
// scrape while the simulation mutates.
//
// A nil *Registry is valid everywhere and hands out nil instruments whose
// methods are no-ops, so instrumented code needs no branches: the
// "registry-disabled" arm of experiment E12 is literally a nil pointer.

// Label is one name=value metric dimension.
type Label struct{ Name, Value string }

// L is shorthand for building a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// RCounter is a monotonically increasing atomic counter instrument.
type RCounter struct{ v atomic.Uint64 }

// Inc adds one. Nil-safe.
func (c *RCounter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add increments by n. Nil-safe.
func (c *RCounter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count. Nil-safe.
func (c *RCounter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// RGauge is an atomic float64 gauge instrument.
type RGauge struct{ bits atomic.Uint64 }

// Set stores v. Nil-safe.
func (g *RGauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add increments the gauge by delta (CAS loop). Nil-safe.
func (g *RGauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Value returns the current gauge value. Nil-safe.
func (g *RGauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// RHistogram is an atomic fixed-bucket histogram instrument. Bucket i
// counts samples <= Bounds[i]; the implicit last bucket is +Inf.
type RHistogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1
	sum    atomic.Uint64   // float64 bits, CAS-accumulated
	n      atomic.Uint64
}

// DefLatencyBuckets are exponential seconds buckets suited to API and
// failover latencies (100µs .. ~100s).
var DefLatencyBuckets = []float64{
	1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2, 0.1, 0.5, 1, 5, 10, 50, 100,
}

// Observe records one sample. Nil-safe.
func (h *RHistogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.n.Add(1)
	for {
		old := h.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the number of samples. Nil-safe.
func (h *RHistogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// Sum returns the sample sum. Nil-safe.
func (h *RHistogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// metricType enumerates instrument families.
type metricType int

const (
	typeCounter metricType = iota
	typeGauge
	typeGaugeFunc
	typeHistogram
)

var typeNames = map[metricType]string{
	typeCounter: "counter", typeGauge: "gauge",
	typeGaugeFunc: "gauge", typeHistogram: "histogram",
}

// child is one labeled instrument inside a family.
type child struct {
	labels  []Label
	key     string
	counter *RCounter
	gauge   *RGauge
	fn      func() float64
	hist    *RHistogram
}

// family groups every child sharing a metric name.
type family struct {
	name     string
	help     string
	typ      metricType
	children map[string]*child
}

// Registry is a concurrency-safe labeled metric registry. Get-or-create
// lookups (Counter, Gauge, Histogram) take the registry lock — cache the
// returned instrument on hot paths. The zero value is not ready; use
// NewRegistry. A nil *Registry hands out nil (no-op) instruments.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	parts := make([]string, len(labels))
	for i, l := range labels {
		parts[i] = l.Name + "=" + l.Value
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

// get returns the named child, creating family and child as needed. It
// panics when the same name is reused with a different instrument type —
// a programming error worth failing loudly on.
func (r *Registry) get(name, help string, typ metricType, labels []Label) *child {
	fam, ok := r.families[name]
	if !ok {
		fam = &family{name: name, help: help, typ: typ, children: make(map[string]*child)}
		r.families[name] = fam
	} else if fam.typ != typ {
		panic(fmt.Sprintf("metrics: %q registered as %s, requested as %s",
			name, typeNames[fam.typ], typeNames[typ]))
	}
	key := labelKey(labels)
	ch, ok := fam.children[key]
	if !ok {
		ch = &child{labels: append([]Label(nil), labels...), key: key}
		switch typ {
		case typeCounter:
			ch.counter = &RCounter{}
		case typeGauge:
			ch.gauge = &RGauge{}
		case typeHistogram:
			ch.hist = &RHistogram{bounds: DefLatencyBuckets,
				counts: make([]atomic.Uint64, len(DefLatencyBuckets)+1)}
		}
		fam.children[key] = ch
	}
	return ch
}

// Counter returns the labeled counter, creating it on first use. Nil-safe.
func (r *Registry) Counter(name, help string, labels ...Label) *RCounter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.get(name, help, typeCounter, labels).counter
}

// Gauge returns the labeled gauge, creating it on first use. Nil-safe.
func (r *Registry) Gauge(name, help string, labels ...Label) *RGauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.get(name, help, typeGauge, labels).gauge
}

// Histogram returns the labeled histogram (DefLatencyBuckets bounds),
// creating it on first use. Nil-safe.
func (r *Registry) Histogram(name, help string, labels ...Label) *RHistogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.get(name, help, typeHistogram, labels).hist
}

// GaugeFunc registers (or replaces) a gauge whose value is sampled from
// fn at snapshot time. fn runs while the snapshot caller holds whatever
// lock guards the sampled state — declnetd's /v1/metrics handler holds
// the world mutex, so fn may read simulation state. Nil-safe.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	ch := r.get(name, help, typeGaugeFunc, labels)
	ch.fn = fn
}

// Sample is one observed value in a deterministic snapshot.
type Sample struct {
	Name   string
	Labels []Label
	Value  float64
	// Histogram samples additionally carry the bucket expansion.
	HistBounds []float64 // cumulative upper bounds (no +Inf)
	HistCounts []uint64  // cumulative counts per bound, then total
	HistSum    float64
}

// Snapshot returns every instrument's current value, sorted by metric
// name then label key — byte-stable across runs for golden tests.
func (r *Registry) Snapshot() []Sample {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)
	var out []Sample
	for _, n := range names {
		fam := r.families[n]
		keys := make([]string, 0, len(fam.children))
		for k := range fam.children {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			ch := fam.children[k]
			s := Sample{Name: n, Labels: ch.labels}
			switch fam.typ {
			case typeCounter:
				s.Value = float64(ch.counter.Value())
			case typeGauge:
				s.Value = ch.gauge.Value()
			case typeGaugeFunc:
				if ch.fn != nil {
					s.Value = ch.fn()
				}
			case typeHistogram:
				s.Value = float64(ch.hist.Count())
				s.HistSum = ch.hist.Sum()
				s.HistBounds = ch.hist.bounds
				var cum uint64
				for i := range ch.hist.counts {
					cum += ch.hist.counts[i].Load()
					s.HistCounts = append(s.HistCounts, cum)
				}
			}
			out = append(out, s)
		}
	}
	return out
}

// formatLabels renders {a="x",b="y"} with names sorted, or "".
func formatLabels(labels []Label, extra ...Label) string {
	all := append(append([]Label(nil), labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Name < all[j].Name })
	parts := make([]string, len(all))
	for i, l := range all {
		parts[i] = fmt.Sprintf("%s=%q", l.Name, l.Value)
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// formatValue renders a float the way Prometheus text exposition expects.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// WritePrometheus renders the registry in Prometheus text exposition
// format (version 0.0.4), deterministically ordered, without timestamps.
// Gauge functions are evaluated during the write; callers synchronizing
// sampled state must hold its lock around this call. Nil-safe.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	samples := r.Snapshot()
	r.mu.Lock()
	fams := make(map[string]*family, len(r.families))
	for n, f := range r.families {
		fams[n] = f
	}
	r.mu.Unlock()
	var lastName string
	for _, s := range samples {
		fam := fams[s.Name]
		if s.Name != lastName {
			if fam.help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", s.Name, fam.help); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", s.Name, typeNames[fam.typ]); err != nil {
				return err
			}
			lastName = s.Name
		}
		if fam.typ == typeHistogram {
			for i, bound := range s.HistBounds {
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", s.Name,
					formatLabels(s.Labels, L("le", formatValue(bound))), s.HistCounts[i]); err != nil {
					return err
				}
			}
			total := s.HistCounts[len(s.HistCounts)-1]
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", s.Name,
				formatLabels(s.Labels, L("le", "+Inf")), total); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", s.Name,
				formatLabels(s.Labels), formatValue(s.HistSum)); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_count%s %d\n", s.Name,
				formatLabels(s.Labels), total); err != nil {
				return err
			}
			continue
		}
		if _, err := fmt.Fprintf(w, "%s%s %s\n", s.Name,
			formatLabels(s.Labels), formatValue(s.Value)); err != nil {
			return err
		}
	}
	return nil
}

// ExpvarMap renders the registry as a flat map for expvar publication:
// "name{labels}" -> value (histograms appear as _count and _sum).
func (r *Registry) ExpvarMap() map[string]float64 {
	if r == nil {
		return nil
	}
	out := make(map[string]float64)
	for _, s := range r.Snapshot() {
		key := s.Name + formatLabels(s.Labels)
		if s.HistCounts != nil {
			out[s.Name+"_count"+formatLabels(s.Labels)] = s.Value
			out[s.Name+"_sum"+formatLabels(s.Labels)] = s.HistSum
			continue
		}
		out[key] = s.Value
	}
	return out
}
