package metrics

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	if h.Count() != 100 {
		t.Fatalf("Count = %d, want 100", h.Count())
	}
	if got, want := h.Mean(), 50.5; math.Abs(got-want) > 1e-9 {
		t.Fatalf("Mean = %v, want %v", got, want)
	}
	if h.Min() != 1 || h.Max() != 100 {
		t.Fatalf("Min,Max = %v,%v; want 1,100", h.Min(), h.Max())
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	var h Histogram
	rng := rand.New(rand.NewSource(1))
	exact := make([]float64, 0, 10000)
	for i := 0; i < 10000; i++ {
		v := rng.ExpFloat64() * 100
		h.Observe(v)
		exact = append(exact, v)
	}
	sort.Float64s(exact)
	for _, q := range []float64{0.5, 0.9, 0.99} {
		want := exact[int(q*float64(len(exact)))-1]
		got := h.Quantile(q)
		// Log-bucketed histogram should be within one bucket (factor 1.1),
		// plus slack for the conservative upper-bound estimate.
		if got < want*0.90 || got > want*1.15 {
			t.Errorf("Quantile(%v) = %v, want within 10%%/15%% of %v", q, got, want)
		}
	}
}

func TestHistogramEmptyAndClamp(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	h.Observe(5)
	if h.Quantile(-1) != h.Quantile(0) {
		t.Fatal("quantile below 0 not clamped")
	}
	if h.Quantile(2) != h.Quantile(1) {
		t.Fatal("quantile above 1 not clamped")
	}
}

func TestHistogramZeroSamples(t *testing.T) {
	var h Histogram
	h.Observe(0)
	h.Observe(0)
	h.Observe(10)
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("median of {0,0,10} = %v, want 0", got)
	}
	if got := h.Quantile(0.99); got < 10*0.9 {
		t.Fatalf("p99 of {0,0,10} = %v, want ~10", got)
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	for i := 0; i < 50; i++ {
		a.Observe(1)
		b.Observe(1000)
	}
	a.Merge(&b)
	if a.Count() != 100 {
		t.Fatalf("merged count = %d, want 100", a.Count())
	}
	if a.Min() != 1 || a.Max() != 1000 {
		t.Fatalf("merged extremes = %v,%v", a.Min(), a.Max())
	}
	med := a.Quantile(0.5)
	if med > 2 {
		t.Fatalf("merged median = %v, want ~1", med)
	}
}

func TestHistogramMergeEmpty(t *testing.T) {
	var a, b Histogram
	a.Observe(5)
	a.Merge(&b) // empty other must be a no-op
	if a.Count() != 1 || a.Max() != 5 {
		t.Fatal("merge with empty histogram changed state")
	}
}

func TestHistogramReset(t *testing.T) {
	var h Histogram
	h.Observe(3)
	h.Reset()
	if h.Count() != 0 || h.Sum() != 0 || h.Max() != 0 {
		t.Fatal("Reset did not clear state")
	}
}

func TestHistogramString(t *testing.T) {
	var h Histogram
	h.Observe(1)
	if s := h.String(); !strings.Contains(s, "n=1") {
		t.Fatalf("String = %q, want to contain n=1", s)
	}
}

// Property: quantile is monotone nondecreasing in q.
func TestQuickQuantileMonotone(t *testing.T) {
	f := func(vals []float64, q1, q2 float64) bool {
		var h Histogram
		for _, v := range vals {
			h.Observe(math.Abs(v))
		}
		a, b := math.Mod(math.Abs(q1), 1), math.Mod(math.Abs(q2), 1)
		if a > b {
			a, b = b, a
		}
		return h.Quantile(a) <= h.Quantile(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("Counter = %d, want 5", c.Value())
	}
}

// TestCounterConcurrent hammers Inc/Add/Value from many goroutines; under
// `go test -race` this proves Counter is safe to share between the
// parallel experiment sweep and health-monitor goroutines.
func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	const workers, perWorker = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				c.Add(1)
				_ = c.Value()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*perWorker*2 {
		t.Fatalf("Counter = %d, want %d", got, workers*perWorker*2)
	}
}

func TestSeries(t *testing.T) {
	var s Series
	s.Add(0, 10)
	s.Add(1, 20)
	s.Add(2, 30)
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	if s.MeanY() != 20 {
		t.Fatalf("MeanY = %v, want 20", s.MeanY())
	}
	if s.MaxY() != 30 {
		t.Fatalf("MaxY = %v, want 30", s.MaxY())
	}
}

func TestSeriesEmpty(t *testing.T) {
	var s Series
	if s.MeanY() != 0 || s.MaxY() != 0 {
		t.Fatal("empty series should report zeros")
	}
}

func TestSummaryExactQuantiles(t *testing.T) {
	var s Summary
	for i := 100; i >= 1; i-- {
		s.Observe(float64(i))
	}
	if s.Count() != 100 {
		t.Fatalf("Count = %d", s.Count())
	}
	if got := s.Quantile(0.5); got != 50 {
		t.Fatalf("median = %v, want 50", got)
	}
	if s.Min() != 1 || s.Max() != 100 {
		t.Fatalf("extremes = %v,%v", s.Min(), s.Max())
	}
	if got := s.Mean(); got != 50.5 {
		t.Fatalf("Mean = %v, want 50.5", got)
	}
}

func TestSummaryObserveAfterQuantile(t *testing.T) {
	var s Summary
	s.Observe(2)
	_ = s.Quantile(0.5)
	s.Observe(1) // must re-sort on next query
	if got := s.Min(); got != 1 {
		t.Fatalf("Min after interleaved Observe = %v, want 1", got)
	}
}

func TestSummaryStddev(t *testing.T) {
	var s Summary
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Observe(v)
	}
	if got := s.Stddev(); math.Abs(got-2) > 1e-9 {
		t.Fatalf("Stddev = %v, want 2", got)
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Quantile(0.5) != 0 || s.Stddev() != 0 {
		t.Fatal("empty summary should report zeros")
	}
}

func TestTableText(t *testing.T) {
	tb := Table{Title: "demo", Columns: []string{"name", "value"}}
	tb.AddRow("alpha", 3.14159)
	tb.AddRow("b", 42)
	tb.Notes = append(tb.Notes, "hello")
	out := tb.Text()
	for _, want := range []string{"demo", "alpha", "3.14", "42", "note: hello"} {
		if !strings.Contains(out, want) {
			t.Errorf("Text output missing %q:\n%s", want, out)
		}
	}
}

func TestTableMarkdown(t *testing.T) {
	tb := Table{Title: "demo", Columns: []string{"a", "b"}}
	tb.AddRow(1, 2)
	out := tb.Markdown()
	if !strings.Contains(out, "| a | b |") || !strings.Contains(out, "| 1 | 2 |") {
		t.Fatalf("Markdown output malformed:\n%s", out)
	}
}

func TestTableFloatFormatting(t *testing.T) {
	tb := Table{Columns: []string{"v"}}
	tb.AddRow(1000.0)
	tb.AddRow(123.456)
	tb.AddRow(1.23456)
	tb.AddRow(0.000123)
	rows := tb.Rows
	if rows[0][0] != "1000" {
		t.Errorf("integral float = %q, want 1000", rows[0][0])
	}
	if rows[1][0] != "123.5" {
		t.Errorf("large float = %q, want 123.5", rows[1][0])
	}
	if rows[2][0] != "1.23" {
		t.Errorf("unit float = %q, want 1.23", rows[2][0])
	}
	if rows[3][0] != "0.000123" {
		t.Errorf("small float = %q, want 0.000123", rows[3][0])
	}
}
