// Package metrics provides light-weight measurement primitives used by the
// simulator and the experiment harness: log-bucketed histograms with
// percentile queries, running counters, and fixed-interval time series.
//
// Everything here is allocation-conscious but favors clarity over raw
// speed; the simulator's bottleneck is the fluid-flow solver, not metrics.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync/atomic"
)

// Histogram records float64 samples in logarithmic buckets, giving
// percentile estimates with bounded relative error (~5% with the default
// growth factor) over an unbounded range. The zero value is ready to use.
type Histogram struct {
	counts []uint64 // bucket i covers [base*g^i, base*g^(i-1))
	zero   uint64   // samples <= 0 or < base
	n      uint64
	sum    float64
	min    float64
	max    float64
}

const (
	histBase   = 1e-9 // smallest distinguishable positive sample
	histGrowth = 1.1
)

var histLogGrowth = math.Log(histGrowth)

func bucketOf(v float64) int {
	// Work in log space to avoid overflow of v/histBase for huge v.
	b := (math.Log(v) - math.Log(histBase)) / histLogGrowth
	if b < 0 {
		return 0
	}
	if b > maxBucket {
		return maxBucket
	}
	return int(b)
}

// maxBucket caps the bucket index; bucket 7800 covers ~1e314, beyond any
// finite float64 sample magnitude we care to distinguish.
const maxBucket = 7800

func bucketUpper(i int) float64 {
	return histBase * math.Pow(histGrowth, float64(i+1))
}

// Observe records one sample. Non-finite samples are ignored.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return
	}
	if h.n == 0 || v < h.min {
		h.min = v
	}
	if h.n == 0 || v > h.max {
		h.max = v
	}
	h.n++
	h.sum += v
	if v < histBase {
		h.zero++
		return
	}
	b := bucketOf(v)
	if b >= len(h.counts) {
		grown := make([]uint64, b+1)
		copy(grown, h.counts)
		h.counts = grown
	}
	h.counts[b]++
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 { return h.n }

// Sum returns the sum of all recorded samples.
func (h *Histogram) Sum() float64 { return h.sum }

// Mean returns the arithmetic mean, or 0 with no samples.
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Min returns the smallest sample, or 0 with no samples.
func (h *Histogram) Min() float64 { return h.min }

// Max returns the largest sample, or 0 with no samples.
func (h *Histogram) Max() float64 { return h.max }

// Quantile returns an estimate of the q-quantile (0 <= q <= 1). With no
// samples it returns 0. Estimates use each bucket's upper bound, so they
// are conservative (never below the true quantile by more than one bucket).
func (h *Histogram) Quantile(q float64) float64 {
	if h.n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(h.n)))
	if rank == 0 {
		rank = 1
	}
	var seen uint64 = h.zero
	if rank <= seen {
		return 0
	}
	for i, c := range h.counts {
		seen += c
		if rank <= seen {
			u := bucketUpper(i)
			if u > h.max {
				u = h.max
			}
			return u
		}
	}
	return h.max
}

// P50, P90, P99 are shorthands for common quantiles.
func (h *Histogram) P50() float64 { return h.Quantile(0.50) }
func (h *Histogram) P90() float64 { return h.Quantile(0.90) }
func (h *Histogram) P99() float64 { return h.Quantile(0.99) }

// Merge folds other into h.
func (h *Histogram) Merge(other *Histogram) {
	if other.n == 0 {
		return
	}
	if h.n == 0 || other.min < h.min {
		h.min = other.min
	}
	if h.n == 0 || other.max > h.max {
		h.max = other.max
	}
	h.n += other.n
	h.sum += other.sum
	h.zero += other.zero
	if len(other.counts) > len(h.counts) {
		grown := make([]uint64, len(other.counts))
		copy(grown, h.counts)
		h.counts = grown
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
}

// Reset clears all recorded samples.
func (h *Histogram) Reset() {
	h.counts = h.counts[:0]
	h.zero, h.n = 0, 0
	h.sum, h.min, h.max = 0, 0, 0
}

// String summarizes the distribution for logs and experiment tables.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%.4g p50=%.4g p90=%.4g p99=%.4g max=%.4g",
		h.n, h.Mean(), h.P50(), h.P90(), h.P99(), h.Max())
}

// Counter is a monotonically increasing count, safe for concurrent use
// (the parallel experiment sweep and the health-monitor goroutines may
// share one). The zero value is ready. Must not be copied after first use.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Series accumulates (x, y) points, typically (virtual time, value), for
// experiment output. The zero value is ready to use.
type Series struct {
	Name string
	Xs   []float64
	Ys   []float64
}

// Add appends one point.
func (s *Series) Add(x, y float64) {
	s.Xs = append(s.Xs, x)
	s.Ys = append(s.Ys, y)
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.Xs) }

// MeanY returns the mean of the Y values, or 0 when empty.
func (s *Series) MeanY() float64 {
	if len(s.Ys) == 0 {
		return 0
	}
	var sum float64
	for _, y := range s.Ys {
		sum += y
	}
	return sum / float64(len(s.Ys))
}

// MaxY returns the maximum Y value, or 0 when empty.
func (s *Series) MaxY() float64 {
	if len(s.Ys) == 0 {
		return 0
	}
	m := s.Ys[0]
	for _, y := range s.Ys[1:] {
		if y > m {
			m = y
		}
	}
	return m
}

// Summary computes exact order statistics over a small sample set. Unlike
// Histogram it stores every sample; use it when exactness matters more
// than memory (experiment outputs, not hot paths). The zero value is ready.
type Summary struct {
	samples []float64
	sorted  bool
}

// Observe records one sample.
func (s *Summary) Observe(v float64) {
	s.samples = append(s.samples, v)
	s.sorted = false
}

// Count returns the number of samples.
func (s *Summary) Count() int { return len(s.samples) }

// Mean returns the arithmetic mean, or 0 when empty.
func (s *Summary) Mean() float64 {
	if len(s.samples) == 0 {
		return 0
	}
	var sum float64
	for _, v := range s.samples {
		sum += v
	}
	return sum / float64(len(s.samples))
}

// Quantile returns the exact q-quantile using the nearest-rank method,
// or 0 when empty.
func (s *Summary) Quantile(q float64) float64 {
	if len(s.samples) == 0 {
		return 0
	}
	if !s.sorted {
		sort.Float64s(s.samples)
		s.sorted = true
	}
	if q <= 0 {
		return s.samples[0]
	}
	if q >= 1 {
		return s.samples[len(s.samples)-1]
	}
	rank := int(math.Ceil(q*float64(len(s.samples)))) - 1
	if rank < 0 {
		rank = 0
	}
	return s.samples[rank]
}

// Min and Max return exact extremes, or 0 when empty.
func (s *Summary) Min() float64 { return s.Quantile(0) }
func (s *Summary) Max() float64 { return s.Quantile(1) }

// Stddev returns the population standard deviation, or 0 when empty.
func (s *Summary) Stddev() float64 {
	n := len(s.samples)
	if n == 0 {
		return 0
	}
	mean := s.Mean()
	var ss float64
	for _, v := range s.samples {
		d := v - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(n))
}

// Table is a simple rows-and-columns result container that every
// experiment returns; it renders as aligned text or GitHub markdown.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends one row, formatting each cell with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddNotef appends a formatted footnote to the table. Experiments use it
// for run metadata such as solver-cost counters.
func (t *Table) AddNotef(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

func formatFloat(v float64) string {
	switch {
	case v == math.Trunc(v) && math.Abs(v) < 1e12:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 100:
		return fmt.Sprintf("%.1f", v)
	case math.Abs(v) >= 1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.4g", v)
	}
}

// Text renders the table as aligned plain text.
func (t *Table) Text() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Markdown renders the table as GitHub-flavored markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "### %s\n\n", t.Title)
	}
	b.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Columns)) + "\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n_%s_\n", n)
	}
	return b.String()
}
