package metrics

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func TestRegistryCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("declnet_api_calls_total", "API calls.", L("verb", "bind"))
	c.Inc()
	c.Add(2)
	if c.Value() != 3 {
		t.Fatalf("counter = %d, want 3", c.Value())
	}
	// Same name+labels must return the same instrument.
	if r.Counter("declnet_api_calls_total", "API calls.", L("verb", "bind")) != c {
		t.Fatal("counter lookup is not idempotent")
	}
	g := r.Gauge("declnet_queue_depth", "Queue depth.")
	g.Set(4)
	g.Add(-1.5)
	if g.Value() != 2.5 {
		t.Fatalf("gauge = %v, want 2.5", g.Value())
	}
}

func TestRegistryHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("declnet_latency_seconds", "Latency.")
	h.Observe(0.002)
	h.Observe(0.2)
	h.Observe(1e6) // lands in the implicit +Inf bucket
	if h.Count() != 3 {
		t.Fatalf("count = %d, want 3", h.Count())
	}
	if got := h.Sum(); got < 1e6 {
		t.Fatalf("sum = %v", got)
	}
}

func TestRegistryTypeClash(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("reusing a counter name as gauge did not panic")
		}
	}()
	r.Gauge("x_total", "")
}

func TestNilRegistryIsNoop(t *testing.T) {
	var r *Registry
	c := r.Counter("a", "")
	c.Inc() // nil instrument: must not crash
	g := r.Gauge("b", "")
	g.Set(1)
	h := r.Histogram("c", "")
	h.Observe(1)
	r.GaugeFunc("d", "", func() float64 { return 1 })
	if r.Snapshot() != nil || c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("nil registry leaked state")
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil || sb.Len() != 0 {
		t.Fatalf("nil registry wrote %q, err %v", sb.String(), err)
	}
}

// TestRegistryConcurrent exercises get-or-create and instrument updates
// from many goroutines while another snapshots; the -race proof that the
// declnetd scrape path may run against a live simulation.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := []string{"a_total", "b_total"}[w%2]
			for i := 0; i < 400; i++ {
				r.Counter(name, "", L("w", "x")).Inc()
				r.Gauge("g", "").Add(1)
				r.Histogram("h_seconds", "").Observe(0.01)
				if i%100 == 0 {
					r.Snapshot()
					var sb strings.Builder
					_ = r.WritePrometheus(&sb)
				}
			}
		}(w)
	}
	wg.Wait()
	total := uint64(0)
	for _, s := range r.Snapshot() {
		if strings.HasSuffix(s.Name, "_total") {
			total += uint64(s.Value)
		}
	}
	if total != 8*400 {
		t.Fatalf("counters sum to %d, want %d", total, 8*400)
	}
}

var updateGolden = flag.Bool("update", false, "rewrite testdata golden files")

// TestPrometheusGolden pins the text exposition byte-for-byte for a
// synthetic registry covering every instrument type, so metric renames or
// ordering changes surface in review. Values are fixed — nothing here is
// wall-clock — so no masking is needed.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("declnet_api_calls_total", "Control-plane API calls by verb.",
		L("verb", "bind"), L("outcome", "ok")).Add(7)
	r.Counter("declnet_api_calls_total", "Control-plane API calls by verb.",
		L("verb", "set_permit_list"), L("outcome", "error")).Add(2)
	r.Gauge("declnet_event_queue_depth", "Simulator event-queue depth.").Set(12)
	r.GaugeFunc("declnet_virtual_time_seconds", "Simulated clock.",
		func() float64 { return 42.5 })
	h := r.Histogram("declnet_failover_mttr_seconds",
		"Failover detect-to-rebind latency.", L("provider", "B"))
	h.Observe(0.0003)
	h.Observe(1.5)
	h.Observe(1.5)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	path := filepath.Join("testdata", "prometheus.golden")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("exposition drifted from %s:\ngot:\n%s\nwant:\n%s", path, got, want)
	}
}

func TestExpvarMap(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "").Add(3)
	r.Histogram("h_seconds", "").Observe(2)
	m := r.ExpvarMap()
	if m["c_total"] != 3 {
		t.Fatalf("c_total = %v", m["c_total"])
	}
	if m["h_seconds_count"] != 1 || m["h_seconds_sum"] != 2 {
		t.Fatalf("histogram expvar entries wrong: %v", m)
	}
}
