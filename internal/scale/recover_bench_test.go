package scale

import (
	"os"
	"strconv"
	"testing"

	"declnet/internal/addr"
	"declnet/internal/intent"
	"declnet/internal/permit"
)

// BenchmarkRecovery measures restart recovery at the E13 default tier
// (10^5 endpoints, 200 tenants): onboard a full drill world with the
// durable intent store attached, compact mid-history so recovery
// exercises snapshot load AND journal-tail replay, then time
// Open -> buildWorld -> RestoreIntent per iteration. The per-iteration
// wall clock is reported as recover_sec — the number `make benchdiff`
// gates (ISSUE E15 recovery budget). DECLNET_RECOVER_EIPS / _TENANTS /
// _REGIONS raise the tier toward 10^6 (`make recover-scale` does);
// recovery decodes the journal and restores surfaces across
// GOMAXPROCS-wide worker pools, so the big tier is where the parallel
// path shows.
func BenchmarkRecovery(b *testing.B) {
	cfg := DefaultConfig()
	for _, ov := range []struct {
		env string
		dst *int
	}{
		{"DECLNET_RECOVER_EIPS", &cfg.EIPs},
		{"DECLNET_RECOVER_TENANTS", &cfg.Tenants},
		{"DECLNET_RECOVER_REGIONS", &cfg.Regions},
	} {
		if v := os.Getenv(ov.env); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil {
				b.Fatalf("%s: %v", ov.env, err)
			}
			*ov.dst = n
		}
	}
	if err := cfg.Validate(); err != nil {
		b.Fatal(err)
	}
	dir := b.TempDir()
	l, err := intent.Open(dir, intent.Options{})
	if err != nil {
		b.Fatal(err)
	}
	w, err := buildWorld(cfg)
	if err != nil {
		b.Fatal(err)
	}
	w.cloud.EnableIntent(l)

	// Onboard exactly like the drill's phase 1: grants plus a permit
	// list per endpoint, fanned out over workers so the journal sees
	// real concurrent append order.
	perTenant := cfg.EIPs / cfg.Tenants
	extra := cfg.EIPs % cfg.Tenants
	err = forEachTenant(cfg, w.tenants, func(_ int, ts *tenantState) error {
		n := perTenant
		if tenantIndex(ts.name) < extra {
			n++
		}
		var regionEntry []permit.Entry
		for i := 0; i < n; i++ {
			eip, err := w.prov.RequestEIP(ts.name, ts.hosts[i%len(ts.hosts)])
			if err != nil {
				return err
			}
			if regionEntry == nil {
				regionEntry = []permit.Entry{addr.NewPrefix(addr.IP(eip), 16)}
			}
			if err := w.prov.SetPermitList(ts.name, eip, regionEntry); err != nil {
				return err
			}
			ts.eips = append(ts.eips, eip)
			// Snapshot halfway through: recovery must fold snapshot and
			// the journal tail written after it.
			if i == n/2 && tenantIndex(ts.name) == 0 {
				if err := l.Compact(); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
	// A QoS tail after the snapshot point.
	for _, ts := range w.tenants {
		if err := w.prov.SetQoS(ts.name, regionName(ts.region), 1e9); err != nil {
			b.Fatal(err)
		}
	}
	if st := l.Stats(); st.AppendErrors != 0 {
		b.Fatalf("onboard journaling hit append errors: %+v", st)
	}
	wantDigest := w.cloud.StateDigest()
	// Crash: the live Log is abandoned un-Closed.

	b.ReportAllocs()
	b.ResetTimer()
	var recovered *world
	for i := 0; i < b.N; i++ {
		rl, err := intent.Open(dir, intent.Options{})
		if err != nil {
			b.Fatal(err)
		}
		rw, err := buildWorld(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := rw.cloud.RestoreIntent(rl.State()); err != nil {
			b.Fatal(err)
		}
		rl.Close()
		recovered = rw
	}
	b.StopTimer()
	b.ReportMetric(0, "ns/op") // recover_sec is the meaningful unit
	b.ReportMetric(b.Elapsed().Seconds()/float64(b.N), "recover_sec")

	if got := recovered.cloud.StateDigest(); got != wantDigest {
		b.Fatalf("recovered digest differs from the crashed world\n got %s\nwant %s", got, wantDigest)
	}
}
