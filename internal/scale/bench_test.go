package scale

import (
	"os"
	"strconv"
	"testing"
	"time"
)

// BenchmarkScaleDrill runs the whole drill per iteration and reports the
// tenant-visible numbers as custom metrics so benchjson lands them in
// BENCH_scale.json. Defaults to the E13 tier (10^5 EIPs / 200 tenants,
// about a second per iteration); DECLNET_SCALE_EIPS / _TENANTS /
// _REGIONS raise it toward 10^6 (`make scale` does).
func BenchmarkScaleDrill(b *testing.B) {
	cfg := DefaultConfig()
	for _, ov := range []struct {
		env string
		dst *int
	}{
		{"DECLNET_SCALE_EIPS", &cfg.EIPs},
		{"DECLNET_SCALE_TENANTS", &cfg.Tenants},
		{"DECLNET_SCALE_REGIONS", &cfg.Regions},
	} {
		if v := os.Getenv(ov.env); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil {
				b.Fatalf("%s: %v", ov.env, err)
			}
			*ov.dst = n
		}
	}
	if err := cfg.Validate(); err != nil {
		b.Fatal(err)
	}
	var last *Metrics
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = m
	}
	b.StopTimer()
	b.ReportMetric(float64(last.ConnectP50.Microseconds()), "connect_p50_us")
	b.ReportMetric(float64(last.ConnectP99.Microseconds()), "connect_p99_us")
	b.ReportMetric(float64(last.PermitLagP99.Microseconds()), "permit_lag_p99_us")
	b.ReportMetric(last.BytesPerEP, "bytes/endpoint")
	b.ReportMetric(last.GrantsPerSec, "grants/sec")
	b.ReportMetric(last.StormIdleRatio, "storm_idle_p99_ratio")
}

// BenchmarkSLOOverhead runs the drill bare and with the SLO plane
// attached and reports the relative wall-clock cost of instrumentation
// as obs_overhead_pct — the number `make benchdiff` gates at <= 5%
// (ISSUE E14 overhead budget). The arms run at the default (E13) tier,
// where per-verb work is representative — the smoke tier's in-memory
// µs-scale ops would put a few hundred nanoseconds of histogram and
// span accounting at 10-20%, a denominator artifact, not a cost any
// tenant-visible op profile would show. Reps alternate bare/instrumented
// and each arm takes its minimum, so one-sided drift (CPU frequency
// ramp, heap growth from the earlier arm's garbage) cannot masquerade
// as instrumentation cost.
func BenchmarkSLOOverhead(b *testing.B) {
	bare := DefaultConfig()
	inst := bare
	inst.SLO = true
	const reps = 5
	var pct float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wallBare, wallInst := 0.0, 0.0
		for r := 0; r < reps; r++ {
			for _, arm := range []struct {
				cfg  Config
				best *float64
			}{{bare, &wallBare}, {inst, &wallInst}} {
				t0 := time.Now()
				if _, err := Run(arm.cfg); err != nil {
					b.Fatal(err)
				}
				if w := time.Since(t0).Seconds(); *arm.best == 0 || w < *arm.best {
					*arm.best = w
				}
			}
		}
		pct = (wallInst - wallBare) / wallBare * 100
	}
	b.StopTimer()
	b.ReportMetric(pct, "obs_overhead_pct")
}
