package scale

import (
	"os"
	"strconv"
	"testing"
)

// BenchmarkScaleDrill runs the whole drill per iteration and reports the
// tenant-visible numbers as custom metrics so benchjson lands them in
// BENCH_scale.json. Defaults to the E13 tier (10^5 EIPs / 200 tenants,
// about a second per iteration); DECLNET_SCALE_EIPS / _TENANTS /
// _REGIONS raise it toward 10^6 (`make scale` does).
func BenchmarkScaleDrill(b *testing.B) {
	cfg := DefaultConfig()
	for _, ov := range []struct {
		env string
		dst *int
	}{
		{"DECLNET_SCALE_EIPS", &cfg.EIPs},
		{"DECLNET_SCALE_TENANTS", &cfg.Tenants},
		{"DECLNET_SCALE_REGIONS", &cfg.Regions},
	} {
		if v := os.Getenv(ov.env); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil {
				b.Fatalf("%s: %v", ov.env, err)
			}
			*ov.dst = n
		}
	}
	if err := cfg.Validate(); err != nil {
		b.Fatal(err)
	}
	var last *Metrics
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = m
	}
	b.StopTimer()
	b.ReportMetric(float64(last.ConnectP50.Microseconds()), "connect_p50_us")
	b.ReportMetric(float64(last.ConnectP99.Microseconds()), "connect_p99_us")
	b.ReportMetric(float64(last.PermitLagP99.Microseconds()), "permit_lag_p99_us")
	b.ReportMetric(last.BytesPerEP, "bytes/endpoint")
	b.ReportMetric(last.GrantsPerSec, "grants/sec")
	b.ReportMetric(last.StormIdleRatio, "storm_idle_p99_ratio")
}
