package scale

import "testing"

// FuzzParseConfig throws arbitrary text at the drill-config parser. The
// invariants: never panic; on accept, the config must render back out via
// String() and re-parse to the identical value (canonical round trip);
// and Validate must never panic on whatever the parser accepted.
func FuzzParseConfig(f *testing.F) {
	f.Add("eips=100000\ntenants=200\n")
	f.Add("# full override\neips=1000000; tenants=400; regions=32\nzipf_skew=1.05")
	f.Add(DefaultConfig().String())
	f.Add("workers = 16 # inline comment\n\n;;\nseed=-1")
	f.Add("hosts_per_zone=64")
	f.Add("eips")
	f.Add("=\n==\nx==y")
	f.Fuzz(func(t *testing.T, text string) {
		cfg, err := ParseConfig(text)
		if err != nil {
			return
		}
		_ = cfg.Validate() // must not panic, verdict is input-dependent
		back, err := ParseConfig(cfg.String())
		if err != nil {
			t.Fatalf("canonical form failed to re-parse: %v\n%s", err, cfg.String())
		}
		if back != cfg {
			t.Fatalf("round trip changed config:\n got %+v\nwant %+v", back, cfg)
		}
	})
}
