package scale

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"time"

	"declnet/internal/addr"
	"declnet/internal/core"
	"declnet/internal/permit"
	"declnet/internal/slo"
	"declnet/internal/topo"
	"declnet/internal/workload"
)

// Metrics is one drill's report. Every duration is wall-clock: the drill
// measures the real control plane under real goroutine contention, not
// simulated time.
type Metrics struct {
	Config Config

	// Onboard phase.
	Onboarded    int           // endpoints granted and permit-listed
	OnboardWall  time.Duration // wall time for the whole onboard fan-out
	GrantsPerSec float64
	BytesPerEP   float64 // provider heap bytes per onboarded endpoint
	Shards       int     // (tenant, region) shards materialized

	// Churn phase (Poisson launch/teardown through the live API).
	ChurnEvents  int
	PermitLagP50 time.Duration // permit update -> enforceable, sampled mid-churn
	PermitLagP99 time.Duration

	// Connect fan-out phase (Zipf destinations through Probe).
	Probes      int
	ProbeDenied int // cross-tenant picks correctly refused (default-off)
	ConnectP50  time.Duration
	ConnectP99  time.Duration

	// Storm isolation: p99 connect latency in an observer shard while a
	// mutation storm runs (a) against a throwaway engine — equal CPU
	// load, no shared control plane — and (b) against a different
	// tenant's live shard. The ratio is the isolation claim E13 gates on.
	StormIdleP99   time.Duration
	StormP99       time.Duration
	StormIdleRatio float64
}

// tenantState is the harness's client-side view of one tenant.
type tenantState struct {
	name   string
	region int
	hosts  []topo.NodeID // the home region's hosts, round-robin packed
	eips   []core.EIP
}

// world is one built drill environment.
type world struct {
	cloud   *core.Cloud
	prov    *core.Provider
	regions []string
	tenants []*tenantState
}

const provName = "hyperscale"

func regionName(i int) string { return fmt.Sprintf("r%03d", i) }

// buildWorld constructs the synthetic provider fabric — Regions × Zones ×
// HostsPerZone hosts — and the client-side tenant table. Endpoints pack
// many-per-host: the drill scales the control plane's address, permit,
// and shard state, not the graph.
func buildWorld(cfg Config) (*world, error) {
	b := topo.NewBuilder()
	spec := topo.ProviderSpec{Name: provName}
	for r := 0; r < cfg.Regions; r++ {
		spec.Regions = append(spec.Regions, topo.RegionSpec{
			Name: regionName(r), Zones: cfg.Zones, HostsPerZone: cfg.HostsPerZone,
		})
	}
	b.AddProvider(spec)
	c := core.NewCloud(cfg.Seed, b.Graph())
	p, err := c.AddProvider(provName, core.Config{
		EIPBase: addr.MustParsePrefix("10.0.0.0/8"),
		SIPBase: addr.MustParsePrefix("172.16.0.0/16"),
	})
	if err != nil {
		return nil, err
	}
	if cfg.SLO {
		c.EnableSLO(slo.NewPlane(slo.Config{}))
	}
	w := &world{cloud: c, prov: p}
	for r := 0; r < cfg.Regions; r++ {
		w.regions = append(w.regions, regionName(r))
	}
	for t := 0; t < cfg.Tenants; t++ {
		ts := &tenantState{name: fmt.Sprintf("tenant-%03d", t), region: t % cfg.Regions}
		reg := regionName(ts.region)
		for z := 1; z <= cfg.Zones; z++ {
			for h := 1; h <= cfg.HostsPerZone; h++ {
				ts.hosts = append(ts.hosts, topo.HostID(provName, reg, fmt.Sprintf("az%d", z), h))
			}
		}
		w.tenants = append(w.tenants, ts)
	}
	return w, nil
}

// forEachTenant fans tenants out over cfg.Workers goroutines, each tenant
// owned by exactly one worker (a tenant's verbs stay ordered; different
// tenants genuinely contend on the shard table).
func forEachTenant(cfg Config, tenants []*tenantState, fn func(w int, ts *tenantState) error) error {
	var wg sync.WaitGroup
	errs := make([]error, cfg.Workers)
	for wkr := 0; wkr < cfg.Workers; wkr++ {
		wg.Add(1)
		go func(wkr int) {
			defer wg.Done()
			for i := wkr; i < len(tenants); i += cfg.Workers {
				if err := fn(wkr, tenants[i]); err != nil {
					errs[wkr] = fmt.Errorf("%s: %w", tenants[i].name, err)
					return
				}
			}
		}(wkr)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func heapInUse() uint64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapInuse
}

// quantile returns the q-quantile of sorted (ascending) samples.
func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

func sortDurations(d []time.Duration) {
	sort.Slice(d, func(i, j int) bool { return d[i] < d[j] })
}

// Run executes the full drill: onboard, churn, connect fan-out, storm
// isolation. The config must have passed Validate.
func Run(cfg Config) (*Metrics, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	w, err := buildWorld(cfg)
	if err != nil {
		return nil, err
	}
	m := &Metrics{Config: cfg}

	// Phase 1 — onboard: every tenant grants its share of endpoints,
	// round-robin over its region's hosts, and permit-lists each one
	// with its home region's /16 — same-tenant traffic is admitted,
	// while most cross-tenant fan-out picks land cross-region and hit
	// the default-off deny path for real.
	perTenant := cfg.EIPs / cfg.Tenants
	extra := cfg.EIPs % cfg.Tenants
	heap0 := heapInUse()
	start := time.Now()
	err = forEachTenant(cfg, w.tenants, func(_ int, ts *tenantState) error {
		n := perTenant
		if idx := tenantIndex(ts.name); idx < extra {
			n++
		}
		var regionEntry []permit.Entry
		for i := 0; i < n; i++ {
			eip, err := w.prov.RequestEIP(ts.name, ts.hosts[i%len(ts.hosts)])
			if err != nil {
				return err
			}
			if regionEntry == nil {
				regionEntry = []permit.Entry{addr.NewPrefix(addr.IP(eip), 16)}
			}
			if err := w.prov.SetPermitList(ts.name, eip, regionEntry); err != nil {
				return err
			}
			ts.eips = append(ts.eips, eip)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	m.OnboardWall = time.Since(start)
	for _, ts := range w.tenants {
		m.Onboarded += len(ts.eips)
	}
	m.GrantsPerSec = float64(m.Onboarded) / m.OnboardWall.Seconds()
	if m.Onboarded > 0 {
		if heap1 := heapInUse(); heap1 > heap0 {
			m.BytesPerEP = float64(heap1-heap0) / float64(m.Onboarded)
		}
	}
	m.Shards = w.cloud.Shards().Len()

	// Phase 2 — churn: a Poisson launch/teardown trace replayed through
	// the live API, tenants contending across shards, while a sampler
	// measures permit-propagation lag (update issued -> verdict
	// enforceable via the concurrent read plane).
	if err := runChurn(cfg, w, m); err != nil {
		return nil, err
	}

	// Phase 3 — connect fan-out: Zipf-skewed destination picks through
	// Probe, the concurrency-safe connect decision path (admission,
	// balancer, potato routing, RTT sampling).
	runFanout(cfg, w, m)

	// Phase 4 — storm isolation.
	runStorm(cfg, w, m)
	return m, nil
}

func tenantIndex(name string) int {
	var i int
	fmt.Sscanf(name, "tenant-%d", &i)
	return i
}

func runChurn(cfg Config, w *world, m *Metrics) error {
	if cfg.ChurnEvents == 0 {
		return nil
	}
	// Size the trace by rate x horizon, then truncate to the configured
	// event budget. The trace's tenant labels map onto ours directly.
	trace := workload.ChurnTrace(cfg.Seed, workload.ChurnConfig{
		Tenants:      cfg.Tenants,
		LaunchRate:   float64(cfg.ChurnEvents), // ~ChurnEvents launches over 1s horizon
		MeanLifetime: 300 * time.Millisecond,
		Horizon:      time.Second,
	})
	if len(trace) > cfg.ChurnEvents {
		trace = trace[:cfg.ChurnEvents]
	}
	m.ChurnEvents = len(trace)

	// Partition events by owning tenant's worker, preserving order.
	byWorker := make([][]workload.ChurnEvent, cfg.Workers)
	for _, ev := range trace {
		idx := tenantIndex(ev.Tenant) % cfg.Tenants
		byWorker[idx%cfg.Workers] = append(byWorker[idx%cfg.Workers], ev)
	}

	// Lag sampler: a dedicated tenant issues Permit updates for sources
	// in 192.168/16 (never probed, so fan-out verdicts stay unaffected)
	// and spins on the admission plane until each is enforceable.
	sampleTenant := w.tenants[0]
	var lags []time.Duration
	var wg sync.WaitGroup
	errs := make([]error, cfg.Workers+1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		if len(sampleTenant.eips) == 0 || cfg.PermitSamples == 0 {
			return
		}
		target := sampleTenant.eips[0]
		for i := 0; i < cfg.PermitSamples; i++ {
			src := addr.IP(0xc0a80000 + uint32(i) + 1)
			t0 := time.Now()
			if err := w.prov.Permit(sampleTenant.name, target, addr.NewPrefix(src, 32)); err != nil {
				errs[cfg.Workers] = err
				return
			}
			for !w.cloud.Admitted(src, target) {
				runtime.Gosched()
			}
			lags = append(lags, time.Since(t0))
		}
	}()
	// Churn workers: launches grant + permit-list, teardowns release the
	// oldest live churn endpoint of that tenant.
	openEntry := []permit.Entry{addr.MustParsePrefix("10.0.0.0/8")}
	for wkr := 0; wkr < cfg.Workers; wkr++ {
		wg.Add(1)
		go func(wkr int) {
			defer wg.Done()
			live := make(map[string][]core.EIP)
			rng := rand.New(rand.NewSource(cfg.Seed + int64(wkr)))
			for _, ev := range byWorker[wkr] {
				ts := w.tenants[tenantIndex(ev.Tenant)%cfg.Tenants]
				switch ev.Kind {
				case workload.Launch:
					eip, err := w.prov.RequestEIP(ts.name, ts.hosts[rng.Intn(len(ts.hosts))])
					if err != nil {
						errs[wkr] = err
						return
					}
					if err := w.prov.SetPermitList(ts.name, eip, openEntry); err != nil {
						errs[wkr] = err
						return
					}
					live[ts.name] = append(live[ts.name], eip)
				case workload.Teardown:
					l := live[ts.name]
					if len(l) == 0 {
						continue
					}
					if err := w.prov.ReleaseEIP(ts.name, l[0]); err != nil {
						errs[wkr] = err
						return
					}
					live[ts.name] = l[1:]
				}
			}
			// Drain survivors so later phases see only onboarded state.
			for tn, l := range live {
				for _, eip := range l {
					if err := w.prov.ReleaseEIP(tn, eip); err != nil {
						errs[wkr] = err
						return
					}
				}
			}
		}(wkr)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	sortDurations(lags)
	m.PermitLagP50 = quantile(lags, 0.50)
	m.PermitLagP99 = quantile(lags, 0.99)
	return nil
}

func runFanout(cfg Config, w *world, m *Metrics) {
	if cfg.Probes == 0 {
		return
	}
	perWorker := cfg.Probes / cfg.Workers
	lat := make([][]time.Duration, cfg.Workers)
	denied := make([]int, cfg.Workers)
	var wg sync.WaitGroup
	for wkr := 0; wkr < cfg.Workers; wkr++ {
		wg.Add(1)
		go func(wkr int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + 1000 + int64(wkr)))
			zipf := workload.NewZipf(cfg.Seed+2000+int64(wkr), cfg.ZipfSkew, uint64(maxEIPs(w.tenants)))
			for i := 0; i < perWorker; i++ {
				ts := w.tenants[rng.Intn(len(w.tenants))]
				if len(ts.eips) < 2 {
					continue
				}
				src := ts.eips[rng.Intn(len(ts.eips))]
				// Zipf pick over the tenant's endpoints: low indices are
				// hot, mirroring a few popular services. One pick in 16
				// goes cross-tenant to exercise the default-off deny.
				var dst core.EIP
				if rng.Intn(16) == 0 {
					other := w.tenants[rng.Intn(len(w.tenants))]
					if other == ts || len(other.eips) == 0 {
						continue
					}
					dst = other.eips[zipf.Draw()%len(other.eips)]
					t0 := time.Now()
					_, _, err := w.cloud.Probe(ts.name, src, dst)
					d := time.Since(t0)
					if err != nil {
						denied[wkr]++
					}
					lat[wkr] = append(lat[wkr], d)
					continue
				}
				dst = ts.eips[zipf.Draw()%len(ts.eips)]
				if dst == src {
					continue
				}
				t0 := time.Now()
				if _, _, err := w.cloud.Probe(ts.name, src, dst); err != nil {
					denied[wkr]++
				}
				lat[wkr] = append(lat[wkr], time.Since(t0))
			}
		}(wkr)
	}
	wg.Wait()
	var all []time.Duration
	for wkr := range lat {
		all = append(all, lat[wkr]...)
		m.ProbeDenied += denied[wkr]
	}
	m.Probes = len(all)
	sortDurations(all)
	m.ConnectP50 = quantile(all, 0.50)
	m.ConnectP99 = quantile(all, 0.99)
}

func maxEIPs(tenants []*tenantState) int {
	max := 2
	for _, ts := range tenants {
		if len(ts.eips) > max {
			max = len(ts.eips)
		}
	}
	return max
}

// runStorm measures shard isolation. The observer (tenant 0) probes
// within its own shard while cfg.Workers stormers mutate. In the
// baseline arm the stormers hammer a private throwaway permit engine —
// identical CPU load, zero shared control-plane state — and in the storm
// arm they hammer a single foreign tenant's live shard (tenant 1, homed
// in a different region). The p99 ratio storm/idle is therefore pure
// contention signal, not scheduler noise. The arms are paired per
// repetition (measured back to back under the same machine conditions)
// and the best paired ratio of 3 is reported — transient GC or
// scheduler spikes only ever inflate the ratio, never deflate it.
func runStorm(cfg Config, w *world, m *Metrics) {
	obs := w.tenants[0]
	victim := w.tenants[1%len(w.tenants)]
	if len(obs.eips) < 2 || len(victim.eips) == 0 || obs == victim {
		return
	}
	probeOnce := func(rng *rand.Rand) time.Duration {
		src := obs.eips[rng.Intn(len(obs.eips))]
		dst := obs.eips[rng.Intn(len(obs.eips))]
		for dst == src {
			dst = obs.eips[rng.Intn(len(obs.eips))]
		}
		t0 := time.Now()
		w.cloud.Probe(obs.name, src, dst)
		return time.Since(t0)
	}
	measure := func(storm bool) time.Duration {
		var wg sync.WaitGroup
		stop := make(chan struct{})
		for wkr := 0; wkr < cfg.Workers; wkr++ {
			wg.Add(1)
			go func(wkr int) {
				defer wg.Done()
				if storm {
					target := victim.eips[wkr%len(victim.eips)]
					for i := 0; i < cfg.StormOps; i++ {
						e := addr.NewPrefix(addr.IP(0xc0a90000+uint32(wkr*cfg.StormOps+i)), 32)
						w.prov.Permit(victim.name, target, e)
						w.prov.Revoke(victim.name, target, e)
					}
				} else {
					eng := permit.NewEngine()
					target := addr.IP(0x0afe0000 + uint32(wkr))
					for i := 0; i < cfg.StormOps; i++ {
						e := addr.NewPrefix(addr.IP(0xc0a90000+uint32(i)), 32)
						eng.Permit(target, e)
						eng.Revoke(target, e)
					}
				}
			}(wkr)
		}
		// Observer probes until the storm drains, then a fixed tail so
		// both arms always collect a sample set.
		var lats []time.Duration
		rng := rand.New(rand.NewSource(cfg.Seed + 3000))
		go func() { wg.Wait(); close(stop) }()
		for {
			select {
			case <-stop:
				for i := 0; i < 128; i++ {
					lats = append(lats, probeOnce(rng))
				}
				sortDurations(lats)
				return quantile(lats, 0.99)
			default:
				lats = append(lats, probeOnce(rng))
			}
		}
	}
	measure(false) // warm-up: caches, balancer state, scheduler
	const reps = 3
	for rep := 0; rep < reps; rep++ {
		idle := measure(false)
		storm := measure(true)
		if idle == 0 {
			continue
		}
		ratio := float64(storm) / float64(idle)
		if m.StormIdleRatio == 0 || ratio < m.StormIdleRatio {
			m.StormIdleRatio = ratio
			m.StormIdleP99 = idle
			m.StormP99 = storm
		}
	}
}
