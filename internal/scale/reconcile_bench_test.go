package scale

import (
	"math/rand"
	"testing"

	"declnet/internal/addr"
	"declnet/internal/core"
	"declnet/internal/intent"
	"declnet/internal/permit"
)

// reconcileWorld onboards the E13 default tier (10^5 endpoints, one
// permit list each, a QoS quota per tenant) with the durable store
// attached, then enables the reconciler at the given anti-entropy K.
func reconcileWorld(b *testing.B, cfg Config, k int) (*world, *core.Reconciler) {
	b.Helper()
	dir := b.TempDir()
	l, err := intent.Open(dir, intent.Options{})
	if err != nil {
		b.Fatal(err)
	}
	w, err := buildWorld(cfg)
	if err != nil {
		b.Fatal(err)
	}
	w.cloud.EnableIntent(l)
	perTenant := cfg.EIPs / cfg.Tenants
	extra := cfg.EIPs % cfg.Tenants
	err = forEachTenant(cfg, w.tenants, func(_ int, ts *tenantState) error {
		n := perTenant
		if tenantIndex(ts.name) < extra {
			n++
		}
		var regionEntry []permit.Entry
		for i := 0; i < n; i++ {
			eip, err := w.prov.RequestEIP(ts.name, ts.hosts[i%len(ts.hosts)])
			if err != nil {
				return err
			}
			if regionEntry == nil {
				regionEntry = []permit.Entry{addr.NewPrefix(addr.IP(eip), 16)}
			}
			if err := w.prov.SetPermitList(ts.name, eip, regionEntry); err != nil {
				return err
			}
			ts.eips = append(ts.eips, eip)
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, ts := range w.tenants {
		if err := w.prov.SetQoS(ts.name, regionName(ts.region), 1e9); err != nil {
			b.Fatal(err)
		}
	}
	r, err := w.cloud.EnableReconciler(core.ReconcilerConfig{AntiEntropyK: k})
	if err != nil {
		b.Fatal(err)
	}
	// Drain the onboarding dirt and cover every anti-entropy phase so
	// the measured sweeps start from a converged world.
	drain := k + 1
	if drain < 2 {
		drain = 2
	}
	for i := 0; i < drain; i++ {
		r.RunSweep()
	}
	return w, r
}

// reconcileK is the incremental arms' rotation width. 1/16 of the
// declared world per sweep keeps the steady-state cost an order of
// magnitude under the full scan (the benchdiff gate reads the ratio)
// while bounding undirtied-drift detection to 16 sweeps.
const reconcileK = 16

// BenchmarkReconcileSweep measures one reconciliation sweep over the
// 10^5-endpoint tier three ways: the legacy full scan, the incremental
// dirty + anti-entropy sweep on a converged world, and the incremental
// sweep under a chaos drift storm (500 wiped permit lists per cycle,
// repaired within one full rotation). benchjson derives
// reconcile_incr_full_ratio from the first two — the number `make
// benchdiff` gates at <= 0.1.
func BenchmarkReconcileSweep(b *testing.B) {
	cfg := DefaultConfig()
	cfg.Probes, cfg.ChurnEvents, cfg.PermitSamples = 0, 0, 0
	if err := cfg.Validate(); err != nil {
		b.Fatal(err)
	}
	steady := func(k int) func(*testing.B) {
		return func(b *testing.B) {
			_, r := reconcileWorld(b, cfg, k)
			b.ReportAllocs()
			b.ResetTimer()
			var last core.SweepResult
			for i := 0; i < b.N; i++ {
				last = r.RunSweep()
			}
			b.StopTimer()
			if last.Repaired != 0 || last.DriftPermits != 0 {
				b.Fatalf("steady-state sweep found work: %+v", last)
			}
			b.ReportMetric(float64(last.Scanned), "scanned/sweep")
			b.ReportMetric(b.Elapsed().Seconds()*1e3/float64(b.N), "sweep_ms")
		}
	}
	b.Run("full", steady(0))
	b.Run("incr", steady(reconcileK))
	b.Run("incr_drift_storm", func(b *testing.B) {
		const wipes = 500
		w, r := reconcileWorld(b, cfg, reconcileK)
		var all []core.EIP
		for _, ts := range w.tenants {
			all = append(all, ts.eips...)
		}
		rng := rand.New(rand.NewSource(3))
		b.ReportAllocs()
		b.ResetTimer()
		sweeps := 0
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			wiped := 0
			for _, j := range rng.Perm(len(all))[:wipes] {
				if w.cloud.DriftWipePermit(addr.IP(all[j])) {
					wiped++
				}
			}
			b.StartTimer()
			// One full rotation detects everything the storm wiped; the
			// cycle is the tenant-visible convergence window.
			repaired := 0
			cycle := 0
			for ; cycle < 2*reconcileK && repaired < wiped; cycle++ {
				repaired += r.RunSweep().Repaired
			}
			sweeps += cycle
			if repaired != wiped {
				b.Fatalf("storm cycle repaired %d of %d wiped lists in %d sweeps", repaired, wiped, cycle)
			}
		}
		b.StopTimer()
		b.ReportMetric(b.Elapsed().Seconds()*1e3/float64(b.N), "storm_cycle_ms")
		b.ReportMetric(float64(sweeps)/float64(b.N), "sweeps/cycle")
	})
}
