package scale

import (
	"strings"
	"testing"
	"time"
)

// TestSmokeDrill runs the CI tier end to end: a 10^4-EIP drill must
// onboard everything, replay churn, measure real latencies, and show
// shard isolation within the E13 gate.
func TestSmokeDrill(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke drill takes a few seconds")
	}
	cfg := SmokeConfig()
	m, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Onboarded != cfg.EIPs {
		t.Errorf("onboarded %d of %d EIPs", m.Onboarded, cfg.EIPs)
	}
	if m.Shards < cfg.Tenants {
		t.Errorf("expected >= %d (tenant, region) shards, got %d", cfg.Tenants, m.Shards)
	}
	if m.ChurnEvents == 0 {
		t.Error("churn trace was empty")
	}
	if m.Probes == 0 || m.ConnectP99 == 0 {
		t.Errorf("fan-out collected %d probes, p99 %v", m.Probes, m.ConnectP99)
	}
	if m.ConnectP50 > m.ConnectP99 {
		t.Errorf("p50 %v > p99 %v", m.ConnectP50, m.ConnectP99)
	}
	if m.PermitLagP99 == 0 {
		t.Error("permit-lag sampler collected nothing")
	}
	if m.BytesPerEP <= 0 {
		t.Errorf("bytes/endpoint not measured: %g", m.BytesPerEP)
	}
	if m.StormIdleRatio <= 0 {
		t.Errorf("storm isolation not measured: ratio %g", m.StormIdleRatio)
	}
	// The E13 acceptance gate, at smoke scale: a storm confined to one
	// shard may not blow up another shard's p99 beyond 1.5x idle.
	if m.StormIdleRatio > 1.5 {
		t.Errorf("storm/idle p99 ratio %.2f exceeds the 1.5 isolation gate (idle %v, storm %v)",
			m.StormIdleRatio, m.StormIdleP99, m.StormP99)
	}
	if m.OnboardWall > 2*time.Minute {
		t.Errorf("onboard took %v — control plane fell over", m.OnboardWall)
	}
}

func TestValidateRejectsOverfullRegion(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Regions = 1
	cfg.Tenants = 1
	err := cfg.Validate()
	if err == nil || !strings.Contains(err.Error(), "capacity") {
		t.Fatalf("expected /16 capacity error, got %v", err)
	}
}

func TestParseConfigOverrides(t *testing.T) {
	cfg, err := ParseConfig("eips = 500\ntenants=5 # fewer\nzipf_skew=1.5; seed=-7\n")
	if err != nil {
		t.Fatal(err)
	}
	want := DefaultConfig()
	want.EIPs, want.Tenants, want.ZipfSkew, want.Seed = 500, 5, 1.5, -7
	if cfg != want {
		t.Fatalf("got %+v, want %+v", cfg, want)
	}
}

func TestParseConfigErrors(t *testing.T) {
	for _, text := range []string{
		"eips",          // not key=value
		"=5",            // empty key
		"eips=",         // empty value
		"eips=1\neips=2",// duplicate
		"bogus=1",       // unknown key
		"eips=ten",      // not an int
		"zipf_skew=x",   // not a float
	} {
		if _, err := ParseConfig(text); err == nil {
			t.Errorf("ParseConfig(%q) accepted bad input", text)
		}
	}
}

func TestConfigStringRoundTrip(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EIPs, cfg.Seed, cfg.ZipfSkew = 123_456, -99, 1.0625
	got, err := ParseConfig(cfg.String())
	if err != nil {
		t.Fatal(err)
	}
	if got != cfg {
		t.Fatalf("round trip changed config:\n got %+v\nwant %+v", got, cfg)
	}
}
