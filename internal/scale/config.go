// Package scale is the million-endpoint drill: a synthetic-scale load
// harness that drives 10^5–10^6 endpoint IPs across hundreds of tenants
// through the real core control-plane API (no HTTP, no simulation
// shortcuts), under Poisson endpoint churn and Zipf-skewed connect
// fan-out — the §6 scalability question ("how will the control plane
// keep up with millions of endpoints?") asked of this codebase instead
// of about it.
//
// The harness measures what a tenant would feel: connect (probe) latency
// quantiles, permit-update propagation lag, onboarding throughput, and
// provider state per endpoint — and what the sharded control plane
// promises: that a mutation storm confined to one (tenant, region) shard
// leaves every other shard's latency envelope intact. Experiment E13
// (internal/exp) renders the drill as a golden table; BenchmarkScaleDrill
// emits the same numbers for benchjson/benchdiff.
package scale

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Config parameterizes one drill. The zero value is not runnable; use
// DefaultConfig or ParseConfig, then Validate.
type Config struct {
	// EIPs is the total endpoint count onboarded across all tenants.
	EIPs int
	// Tenants is the tenant count; tenant i homes in region i % Regions.
	Tenants int
	// Regions is the provider's region count (each carved one /16, so
	// at most 256 and at most ~60k EIPs per region).
	Regions int
	// Zones and HostsPerZone shape each region's fabric; endpoints pack
	// many-per-host (kubemark-style), so the graph stays small while the
	// address space is huge.
	Zones        int
	HostsPerZone int
	// Probes is the connect fan-out sample count; destinations are drawn
	// Zipf(skew) over each tenant's endpoints, so a few are hot.
	Probes int
	// ZipfSkew is the fan-out skew parameter (> 1).
	ZipfSkew float64
	// ChurnEvents caps the Poisson launch/teardown trace length.
	ChurnEvents int
	// PermitSamples is how many permit-propagation lag measurements the
	// sampler takes while churn runs.
	PermitSamples int
	// StormOps is the per-rep mutation count in the storm-isolation
	// phase (both the real storm and the CPU-fairness baseline).
	StormOps int
	// Workers is the harness's client-side concurrency.
	Workers int
	// Seed feeds every generator in the drill.
	Seed int64
	// SLO attaches a latency-accounting plane (internal/slo) to the
	// drill's cloud, so the drill doubles as the instrumentation-overhead
	// benchmark arm (BenchmarkSLOOverhead).
	SLO bool
}

// DefaultConfig is the E13 tier: a 10^5-EIP, 200-tenant drill.
func DefaultConfig() Config {
	return Config{
		EIPs:          100_000,
		Tenants:       200,
		Regions:       16,
		Zones:         4,
		HostsPerZone:  8,
		Probes:        20_000,
		ZipfSkew:      1.2,
		ChurnEvents:   2_000,
		PermitSamples: 200,
		StormOps:      4_000,
		Workers:       8,
		Seed:          42,
	}
}

// SmokeConfig is the CI tier: a 10^4-EIP drill that finishes in seconds.
func SmokeConfig() Config {
	cfg := DefaultConfig()
	cfg.EIPs = 10_000
	cfg.Tenants = 50
	cfg.Regions = 8
	cfg.Probes = 4_000
	cfg.ChurnEvents = 500
	cfg.PermitSamples = 50
	cfg.StormOps = 1_000
	return cfg
}

// perRegionCap is the usable host addresses in one region /16 (the pool
// reserves network/broadcast-style edges).
const perRegionCap = 65_000

// Validate bounds-checks a config against what the harness and the /8
// address carving can actually hold.
func (c Config) Validate() error {
	switch {
	case c.EIPs < 1:
		return fmt.Errorf("scale: eips must be >= 1, got %d", c.EIPs)
	case c.Tenants < 1:
		return fmt.Errorf("scale: tenants must be >= 1, got %d", c.Tenants)
	case c.Regions < 1 || c.Regions > 255:
		return fmt.Errorf("scale: regions must be in [1,255], got %d", c.Regions)
	case c.Zones < 1 || c.Zones > 64:
		return fmt.Errorf("scale: zones must be in [1,64], got %d", c.Zones)
	case c.HostsPerZone < 1 || c.HostsPerZone > 1024:
		return fmt.Errorf("scale: hosts_per_zone must be in [1,1024], got %d", c.HostsPerZone)
	case c.Probes < 0:
		return fmt.Errorf("scale: probes must be >= 0, got %d", c.Probes)
	case c.ZipfSkew <= 1:
		return fmt.Errorf("scale: zipf_skew must be > 1, got %g", c.ZipfSkew)
	case c.ChurnEvents < 0:
		return fmt.Errorf("scale: churn_events must be >= 0, got %d", c.ChurnEvents)
	case c.PermitSamples < 0:
		return fmt.Errorf("scale: permit_samples must be >= 0, got %d", c.PermitSamples)
	case c.StormOps < 1:
		return fmt.Errorf("scale: storm_ops must be >= 1, got %d", c.StormOps)
	case c.Workers < 1 || c.Workers > 256:
		return fmt.Errorf("scale: workers must be in [1,256], got %d", c.Workers)
	}
	// Tenants home one region each; a region's share of EIPs (plus churn
	// headroom) must fit its /16.
	tenantsPerRegion := (c.Tenants + c.Regions - 1) / c.Regions
	perTenant := (c.EIPs + c.Tenants - 1) / c.Tenants
	need := tenantsPerRegion*perTenant + c.ChurnEvents
	if need > perRegionCap {
		return fmt.Errorf("scale: %d EIPs per region (plus churn) exceeds the /16 capacity %d — add regions",
			need, perRegionCap)
	}
	if c.Tenants > c.EIPs {
		return fmt.Errorf("scale: more tenants (%d) than EIPs (%d)", c.Tenants, c.EIPs)
	}
	return nil
}

// field maps one config key to its accessor, keeping ParseConfig and
// String in lockstep.
var fields = []struct {
	key string
	get func(*Config) string
	set func(*Config, string) error
}{
	{"eips", func(c *Config) string { return strconv.Itoa(c.EIPs) }, setInt(func(c *Config, v int) { c.EIPs = v })},
	{"tenants", func(c *Config) string { return strconv.Itoa(c.Tenants) }, setInt(func(c *Config, v int) { c.Tenants = v })},
	{"regions", func(c *Config) string { return strconv.Itoa(c.Regions) }, setInt(func(c *Config, v int) { c.Regions = v })},
	{"zones", func(c *Config) string { return strconv.Itoa(c.Zones) }, setInt(func(c *Config, v int) { c.Zones = v })},
	{"hosts_per_zone", func(c *Config) string { return strconv.Itoa(c.HostsPerZone) }, setInt(func(c *Config, v int) { c.HostsPerZone = v })},
	{"probes", func(c *Config) string { return strconv.Itoa(c.Probes) }, setInt(func(c *Config, v int) { c.Probes = v })},
	{"zipf_skew", func(c *Config) string { return strconv.FormatFloat(c.ZipfSkew, 'g', -1, 64) },
		func(c *Config, s string) error {
			v, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return err
			}
			c.ZipfSkew = v
			return nil
		}},
	{"churn_events", func(c *Config) string { return strconv.Itoa(c.ChurnEvents) }, setInt(func(c *Config, v int) { c.ChurnEvents = v })},
	{"permit_samples", func(c *Config) string { return strconv.Itoa(c.PermitSamples) }, setInt(func(c *Config, v int) { c.PermitSamples = v })},
	{"storm_ops", func(c *Config) string { return strconv.Itoa(c.StormOps) }, setInt(func(c *Config, v int) { c.StormOps = v })},
	{"workers", func(c *Config) string { return strconv.Itoa(c.Workers) }, setInt(func(c *Config, v int) { c.Workers = v })},
	{"seed", func(c *Config) string { return strconv.FormatInt(c.Seed, 10) },
		func(c *Config, s string) error {
			v, err := strconv.ParseInt(s, 10, 64)
			if err != nil {
				return err
			}
			c.Seed = v
			return nil
		}},
	{"slo", func(c *Config) string { return strconv.FormatBool(c.SLO) },
		func(c *Config, s string) error {
			v, err := strconv.ParseBool(s)
			if err != nil {
				return err
			}
			c.SLO = v
			return nil
		}},
}

func setInt(assign func(*Config, int)) func(*Config, string) error {
	return func(c *Config, s string) error {
		v, err := strconv.Atoi(s)
		if err != nil {
			return err
		}
		assign(c, v)
		return nil
	}
}

// ParseConfig reads a drill config in key=value form, one pair per line
// (or semicolon-separated); '#' starts a comment, blank lines are
// ignored, unknown or duplicate keys are errors. Unset keys keep their
// DefaultConfig values, so a config file only states what it overrides.
// The result is syntax-checked only; call Validate before running it.
func ParseConfig(text string) (Config, error) {
	cfg := DefaultConfig()
	seen := make(map[string]bool)
	lineno := 0
	for _, rawLine := range strings.Split(text, "\n") {
		lineno++
		for _, raw := range strings.Split(rawLine, ";") {
			line := raw
			if i := strings.IndexByte(line, '#'); i >= 0 {
				line = line[:i]
			}
			line = strings.TrimSpace(line)
			if line == "" {
				continue
			}
			k, v, ok := strings.Cut(line, "=")
			if !ok {
				return cfg, fmt.Errorf("scale: line %d: %q is not key=value", lineno, line)
			}
			k, v = strings.TrimSpace(k), strings.TrimSpace(v)
			if k == "" {
				return cfg, fmt.Errorf("scale: line %d: empty key", lineno)
			}
			if v == "" {
				return cfg, fmt.Errorf("scale: line %d: empty value for %q", lineno, k)
			}
			if seen[k] {
				return cfg, fmt.Errorf("scale: line %d: duplicate key %q", lineno, k)
			}
			seen[k] = true
			found := false
			for i := range fields {
				if fields[i].key == k {
					if err := fields[i].set(&cfg, v); err != nil {
						return cfg, fmt.Errorf("scale: line %d: %s: %v", lineno, k, err)
					}
					found = true
					break
				}
			}
			if !found {
				return cfg, fmt.Errorf("scale: line %d: unknown key %q (known: %s)", lineno, k, strings.Join(knownKeys(), ", "))
			}
		}
	}
	return cfg, nil
}

func knownKeys() []string {
	out := make([]string, len(fields))
	for i := range fields {
		out[i] = fields[i].key
	}
	sort.Strings(out)
	return out
}

// String renders the canonical key=value form; ParseConfig(c.String())
// round-trips exactly (the fuzz target pins this).
func (c Config) String() string {
	var b strings.Builder
	for i := range fields {
		fmt.Fprintf(&b, "%s=%s\n", fields[i].key, fields[i].get(&c))
	}
	return b.String()
}
