package topo

import "sync/atomic"

// Epoch scoping. PR 4 gave the graph a single mutation epoch and taught
// qos.Router to flush its whole path cache whenever it moved — correct,
// but it means a link flap in one provider region evicts warm paths
// confined to every other region (the whole-network recomputation the
// mutation plane is supposed to absorb). Scoped epochs split the
// invalidation domain: every link belongs to exactly one scope — the
// provider region that contains both its endpoints, or the cross-region
// cut (CrossCut) when it spans regions, providers, or the public
// internet — and each scope carries its own epoch counter.
//
// The soundness rule is asymmetric:
//
//   - Degrading mutations (failing a link) can only change answers for
//     queries whose best path traverses the failed link, and that path
//     traverses the link's scope. Removals never create better
//     alternatives elsewhere, so bumping just the link's scope epoch is
//     sound: a cached path that avoids the scope is still optimal.
//
//   - Improving mutations (restoring a link, adding a node or link) can
//     create a better path for ANY pair — a healed backbone link may
//     undercut a cached detour that never touches its region. Those bump
//     flushEpoch, which invalidates every cache entry wholesale.
//
// Cache entries therefore validate in two steps: flushEpoch must be
// unchanged since fill, and the sum of the entry's traversed-scope
// epochs must equal the sum recorded at fill time (sound because epochs
// only grow, so any bump changes the sum). Negative entries
// ("unreachable") record no scopes and survive every degrading
// mutation: failing links cannot make a destination reachable.

// Scope identifies an epoch scope: CrossCut (0) covers links that cross
// regions, providers, or the public internet; every provider region
// with at least one wholly-contained link or node gets its own.
type Scope int32

// CrossCut is the scope of links not confined to a single provider
// region (backbone, transit, dedicated circuits, IXP cross-connects).
const CrossCut Scope = 0

// Scope reports the epoch scope the link belongs to, assigned at
// AddLink time.
func (l *Link) Scope() Scope { return l.scope }

// FlushEpoch counts improving and structural mutations (AddNode,
// AddLink, link restores). Caches must discard everything when it
// moves: such mutations can better any cached answer regardless of the
// path it traverses.
func (g *Graph) FlushEpoch() uint64 { return g.flushEpoch.Load() }

// ScopeEpoch returns the mutation counter of one scope.
func (g *Graph) ScopeEpoch(s Scope) uint64 {
	if int(s) >= len(g.scopeEps) {
		return 0
	}
	return g.scopeEps[s].Load()
}

// ScopeEpochSum returns the sum of the given scopes' epochs. Cache
// entries store the sum at fill time and revalidate by recomputing it:
// epochs are monotonic, so the sum changes iff some listed scope was
// mutated. Atomic loads only — no lock — so the read plane can
// revalidate concurrently.
func (g *Graph) ScopeEpochSum(scopes []Scope) uint64 {
	var sum uint64
	for _, s := range scopes {
		if int(s) < len(g.scopeEps) {
			sum += g.scopeEps[s].Load()
		}
	}
	return sum
}

// NumScopes reports how many epoch scopes exist (cross-cut included).
func (g *Graph) NumScopes() int { return len(g.scopeEps) }

// ScopeEpochs copies every scope's current epoch into buf (reallocated
// when too small), index-aligned with Scope values. Callers snapshot the
// counters before a computation and compare per-scope afterwards to
// decide whether the scopes they actually read stayed quiescent —
// mutations in unrelated scopes do not perturb the comparison, which is
// what keeps one shard's churn from poisoning another shard's caches.
// Atomic loads only; new scopes appear only through structural mutations
// (AddLink), which bump flushEpoch and are caught by the flush check.
func (g *Graph) ScopeEpochs(buf []uint64) []uint64 {
	eps := g.scopeEps
	if cap(buf) < len(eps) {
		buf = make([]uint64, 0, len(eps))
	}
	buf = buf[:0]
	for _, e := range eps {
		buf = append(buf, e.Load())
	}
	return buf
}

// scopeOf interns the scope for a provider region, creating it on first
// use. Nodes outside any region (internet core, IXPs, on-prem without a
// region) fold into CrossCut.
func (g *Graph) scopeOf(provider, region string) Scope {
	if provider == "" || region == "" {
		return CrossCut
	}
	key := provider + "/" + region
	if s, ok := g.scopeIdx[key]; ok {
		return s
	}
	s := Scope(len(g.scopeEps))
	g.scopeIdx[key] = s
	g.scopeEps = append(g.scopeEps, new(atomic.Uint64))
	return s
}

// bumpScoped records a degrading mutation confined to scope s: the
// global epoch and s's epoch advance, flushEpoch does not. Inside a
// batch the bump is deferred and coalesced into EndBatch.
func (g *Graph) bumpScoped(s Scope) {
	if g.batchDepth > 0 {
		g.batchDirty = true
		g.batchScopes[s] = struct{}{}
		return
	}
	g.epoch.Add(1)
	g.scopeEps[s].Add(1)
}

// bumpFlush records an improving or structural mutation: the global
// epoch and flushEpoch advance, invalidating every cached answer.
func (g *Graph) bumpFlush() {
	if g.batchDepth > 0 {
		g.batchDirty = true
		g.batchFlush = true
		return
	}
	g.epoch.Add(1)
	g.flushEpoch.Add(1)
}

// BeginBatch opens a coalescing window: mutations made before the
// matching EndBatch advance each epoch counter at most once, so a burst
// of N same-timestamp mutations (a region failure taking down hundreds
// of directed links, a 10k-endpoint onboarding batch) costs one
// invalidation instead of N. Batches nest by refcount. Like all graph
// mutation, batching requires external write exclusion; concurrent
// readers during a batch observe half-applied state exactly as they
// would between unbatched mutations, and entries they cache are
// invalidated by the deferred bumps at EndBatch.
func (g *Graph) BeginBatch() {
	if g.batchDepth == 0 && g.batchScopes == nil {
		g.batchScopes = make(map[Scope]struct{})
	}
	g.batchDepth++
}

// EndBatch closes the window opened by BeginBatch. When the outermost
// batch ends, the global epoch advances once, each touched scope's
// epoch advances once, and flushEpoch advances once if any batched
// mutation was improving or structural. A batch with no mutations
// advances nothing.
func (g *Graph) EndBatch() {
	if g.batchDepth == 0 {
		panic("topo: EndBatch without BeginBatch")
	}
	g.batchDepth--
	if g.batchDepth > 0 || !g.batchDirty {
		return
	}
	g.epoch.Add(1)
	for s := range g.batchScopes {
		g.scopeEps[s].Add(1)
	}
	if g.batchFlush {
		g.flushEpoch.Add(1)
	}
	clear(g.batchScopes)
	g.batchDirty, g.batchFlush = false, false
}

// Batch runs fn inside a BeginBatch/EndBatch window, ending the batch
// even when fn panics.
func (g *Graph) Batch(fn func() error) error {
	g.BeginBatch()
	defer g.EndBatch()
	return fn()
}
