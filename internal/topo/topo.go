// Package topo models the physical substrate the paper's scenarios run
// over: multiple cloud providers with regions and WAN backbones, the public
// internet between them, internet exchange points (IXPs), on-premises
// datacenters, and dedicated connections (the Direct-Connect/ExpressRoute/
// MPLS class of links from §2 step 4 of the paper).
//
// The graph is directed (each physical link is a pair of directed edges) so
// asymmetric provisioning is expressible. Link attributes carry everything
// the flow-level simulator in package netsim needs: capacity, propagation
// delay, jitter bound, and loss probability.
package topo

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// NodeKind classifies graph nodes.
type NodeKind int

const (
	// Host is a VM/container endpoint.
	Host NodeKind = iota
	// ZoneFabric abstracts a zone's top-of-rack/aggregation layers.
	ZoneFabric
	// RegionRouter is a region's core router inside a provider.
	RegionRouter
	// BorderRouter is a provider exit/entry point to the public internet.
	BorderRouter
	// BackboneRouter is an interior node of a provider's private WAN.
	BackboneRouter
	// IXPRouter is a router at an internet exchange / colocation facility.
	IXPRouter
	// InternetCore is an abstract public-internet transit node.
	InternetCore
	// OnPremRouter is the edge router of a private datacenter.
	OnPremRouter
)

var nodeKindNames = map[NodeKind]string{
	Host: "host", ZoneFabric: "zone", RegionRouter: "region",
	BorderRouter: "border", BackboneRouter: "backbone", IXPRouter: "ixp",
	InternetCore: "inet", OnPremRouter: "onprem",
}

func (k NodeKind) String() string { return nodeKindNames[k] }

// LinkKind classifies links, which is what QoS path policy keys on.
type LinkKind int

const (
	// Access connects hosts to their zone fabric.
	Access LinkKind = iota
	// Fabric connects zone fabrics to region routers.
	Fabric
	// Backbone is a provider's private inter-region WAN link.
	Backbone
	// Transit is a public-internet link (border<->inet, inet<->inet).
	Transit
	// Dedicated is a provisioned private circuit (DX/ER/MPLS class).
	Dedicated
	// XConn is an intra-facility cross-connect at an IXP.
	XConn
)

var linkKindNames = map[LinkKind]string{
	Access: "access", Fabric: "fabric", Backbone: "backbone",
	Transit: "transit", Dedicated: "dedicated", XConn: "xconn",
}

func (k LinkKind) String() string { return linkKindNames[k] }

// NodeID names a node uniquely within a graph.
type NodeID string

// Node is a vertex of the substrate graph.
type Node struct {
	ID       NodeID
	Kind     NodeKind
	Provider string // cloud provider name; "" for internet/IXP nodes
	Region   string // region name within the provider; "" when N/A
	Zone     string // availability zone; "" when N/A
}

// Link is a directed edge with transmission characteristics.
type Link struct {
	ID       string
	From, To NodeID
	Kind     LinkKind
	// Capacity is the link rate in bits per second.
	Capacity float64
	// Delay is the one-way propagation delay.
	Delay time.Duration
	// Jitter is the bound of uniformly distributed extra delay.
	Jitter time.Duration
	// Loss is the per-traversal packet loss probability in [0,1).
	Loss float64
	// down marks a failed link; set through Graph.SetLinkUp.
	down bool
	// fromIdx/toIdx are the arena indices of From/To, assigned by AddLink
	// so path search never touches the NodeID maps.
	fromIdx, toIdx int32
	// scope is the epoch scope (see scope.go): the provider region that
	// contains both endpoints, or CrossCut. Assigned by AddLink.
	scope Scope
}

// Up reports whether the link is in service.
func (l *Link) Up() bool { return !l.down }

// Graph is the substrate topology. Construct with New and the Add methods;
// it is not safe for concurrent mutation, but any number of goroutines may
// run ShortestPath (and the other read-only accessors) concurrently as
// long as no mutation is in flight.
//
// Nodes live in a dense arena (nodeList, indexed by the order of AddNode)
// so path search runs over int indices instead of NodeID map keys, and
// adjacency lists are kept sorted by link ID at mutation time so the
// search never sorts.
type Graph struct {
	nodes map[NodeID]*Node
	links map[string]*Link

	idx      map[NodeID]int32 // NodeID -> arena index
	nodeList []*Node          // arena, in AddNode order
	adj      [][]*Link        // adj[i] = out-links of nodeList[i], sorted by ID

	// epoch counts topology mutations (AddNode/AddLink/SetLinkUp/
	// SetPairUp). Epoch-keyed caches (qos.Router) compare it to detect
	// staleness; it is atomic so readers need no lock. A batch counts as
	// one mutation regardless of how many calls it coalesces.
	epoch atomic.Uint64

	// Scoped invalidation state (see scope.go): flushEpoch advances on
	// improving/structural mutations, scopeEps[s] on degrading mutations
	// confined to scope s, and scopeIdx interns "provider/region" scope
	// names. scopeEps[CrossCut] exists from construction.
	flushEpoch atomic.Uint64
	scopeIdx   map[string]Scope
	scopeEps   []*atomic.Uint64

	// Batch coalescing state (BeginBatch/EndBatch), guarded by the same
	// external write exclusion as all mutation.
	batchDepth  int
	batchDirty  bool
	batchFlush  bool
	batchScopes map[Scope]struct{}

	// scratch pools per-search working state so concurrent ShortestPath
	// calls each get their own arrays without per-call allocation.
	scratch sync.Pool
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		nodes:    make(map[NodeID]*Node),
		links:    make(map[string]*Link),
		idx:      make(map[NodeID]int32),
		scopeIdx: make(map[string]Scope),
		scopeEps: []*atomic.Uint64{new(atomic.Uint64)}, // CrossCut
	}
}

// Epoch returns the number of topology mutations so far. Any change that
// can alter path selection bumps it, so a cache keyed on (Epoch, query)
// can never serve a route computed before a fault or heal.
func (g *Graph) Epoch() uint64 { return g.epoch.Load() }

// AddNode inserts a node; duplicate IDs are an error.
func (g *Graph) AddNode(n Node) (*Node, error) {
	if _, ok := g.nodes[n.ID]; ok {
		return nil, fmt.Errorf("topo: duplicate node %q", n.ID)
	}
	cp := n
	g.nodes[n.ID] = &cp
	g.idx[n.ID] = int32(len(g.nodeList))
	g.nodeList = append(g.nodeList, &cp)
	g.adj = append(g.adj, nil)
	// Structural: a new node can resolve cached "unknown node" errors,
	// which record no scopes, so only a wholesale flush reaches them.
	g.bumpFlush()
	return &cp, nil
}

// MustAddNode is AddNode for builders; it panics on error.
func (g *Graph) MustAddNode(n Node) *Node {
	node, err := g.AddNode(n)
	if err != nil {
		panic(err)
	}
	return node
}

// Node returns the node with the given ID.
func (g *Graph) Node(id NodeID) (*Node, bool) {
	n, ok := g.nodes[id]
	return n, ok
}

// Nodes returns all nodes sorted by ID.
func (g *Graph) Nodes() []*Node {
	out := make([]*Node, 0, len(g.nodes))
	for _, n := range g.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// NodesWhere returns all nodes matching the predicate, sorted by ID.
func (g *Graph) NodesWhere(pred func(*Node) bool) []*Node {
	var out []*Node
	for _, n := range g.nodes {
		if pred(n) {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// AddLink inserts one directed link. Endpoints must exist. The link is
// spliced into its source's adjacency list at its sorted (by ID) position
// so path search relaxes in deterministic order without sorting.
func (g *Graph) AddLink(l Link) (*Link, error) {
	fi, ok := g.idx[l.From]
	if !ok {
		return nil, fmt.Errorf("topo: link %q from unknown node %q", l.ID, l.From)
	}
	ti, ok := g.idx[l.To]
	if !ok {
		return nil, fmt.Errorf("topo: link %q to unknown node %q", l.ID, l.To)
	}
	if _, ok := g.links[l.ID]; ok {
		return nil, fmt.Errorf("topo: duplicate link %q", l.ID)
	}
	if l.Capacity <= 0 {
		return nil, fmt.Errorf("topo: link %q has non-positive capacity", l.ID)
	}
	if l.Loss < 0 || l.Loss >= 1 {
		return nil, fmt.Errorf("topo: link %q has loss %v outside [0,1)", l.ID, l.Loss)
	}
	cp := l
	cp.fromIdx, cp.toIdx = fi, ti
	// The link's scope is the provider region containing both endpoints;
	// anything spanning regions/providers (or touching an unregioned
	// node) is cross-cut.
	from, to := g.nodeList[fi], g.nodeList[ti]
	cp.scope = CrossCut
	if s := g.scopeOf(from.Provider, from.Region); s != CrossCut &&
		s == g.scopeOf(to.Provider, to.Region) {
		cp.scope = s
	}
	g.links[l.ID] = &cp
	out := g.adj[fi]
	at := sort.Search(len(out), func(i int) bool { return out[i].ID >= cp.ID })
	out = append(out, nil)
	copy(out[at+1:], out[at:])
	out[at] = &cp
	g.adj[fi] = out
	// Structural/improving: a new edge can better any cached path.
	g.bumpFlush()
	return &cp, nil
}

// Connect adds a symmetric pair of directed links with shared attributes,
// naming them "<id>:fwd" and "<id>:rev".
func (g *Graph) Connect(id string, a, b NodeID, kind LinkKind, capacity float64, delay, jitter time.Duration, loss float64) error {
	if _, err := g.AddLink(Link{ID: id + ":fwd", From: a, To: b, Kind: kind,
		Capacity: capacity, Delay: delay, Jitter: jitter, Loss: loss}); err != nil {
		return err
	}
	_, err := g.AddLink(Link{ID: id + ":rev", From: b, To: a, Kind: kind,
		Capacity: capacity, Delay: delay, Jitter: jitter, Loss: loss})
	return err
}

// MustConnect is Connect for builders; it panics on error.
func (g *Graph) MustConnect(id string, a, b NodeID, kind LinkKind, capacity float64, delay, jitter time.Duration, loss float64) {
	if err := g.Connect(id, a, b, kind, capacity, delay, jitter, loss); err != nil {
		panic(err)
	}
}

// Link returns the link with the given ID.
func (g *Graph) Link(id string) (*Link, bool) {
	l, ok := g.links[id]
	return l, ok
}

// SetLinkUp fails or restores one directed link. Use SetPairUp for the
// usual case of a whole physical link. Failing a link is a degrading
// mutation (bumps only the link's scope epoch); restoring one is
// improving (bumps flushEpoch), and deliberately bumps even on a no-op
// restore so callers can force a wholesale cache flush.
func (g *Graph) SetLinkUp(id string, up bool) error {
	l, err := g.setLinkUp(id, up)
	if err != nil {
		return err
	}
	g.bumpTransition(l, up)
	return nil
}

// setLinkUp is SetLinkUp without the epoch bump, so compound mutators
// (SetPairUp) count as one topology transition.
func (g *Graph) setLinkUp(id string, up bool) (*Link, error) {
	l, ok := g.links[id]
	if !ok {
		return nil, fmt.Errorf("topo: unknown link %q", id)
	}
	l.down = !up
	return l, nil
}

// bumpTransition classifies one link transition for epoch accounting:
// down is degrading (scoped), up is improving (wholesale flush).
func (g *Graph) bumpTransition(l *Link, up bool) {
	if up {
		g.bumpFlush()
	} else {
		g.bumpScoped(l.scope)
	}
}

// SetPairUp fails or restores both directions of a link created with
// Connect (ids "<id>:fwd" and "<id>:rev"). It bumps the epoch once: a
// physical link transition is one mutation, not two. Both directions
// share a scope (same endpoints), so one scoped bump covers the pair.
func (g *Graph) SetPairUp(id string, up bool) error {
	fwd, err := g.setLinkUp(id+":fwd", up)
	if err != nil {
		return err
	}
	_, err = g.setLinkUp(id+":rev", up)
	g.bumpTransition(fwd, up) // :fwd changed even when :rev is missing
	return err
}

// Links returns all links sorted by ID.
func (g *Graph) Links() []*Link {
	out := make([]*Link, 0, len(g.links))
	for _, l := range g.links {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Out returns the links leaving node id, sorted by link ID.
func (g *Graph) Out(id NodeID) []*Link {
	i, ok := g.idx[id]
	if !ok {
		return nil
	}
	return g.adj[i]
}

// Incident returns every directed link touching the node — leaving or
// entering it — sorted by ID. Fault injection uses it to take a whole
// node out of service by failing its attached links.
func (g *Graph) Incident(id NodeID) []*Link {
	var out []*Link
	for _, l := range g.links {
		if l.From == id || l.To == id {
			out = append(out, l)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// NodesOf returns the nodes of a provider region (all kinds), sorted by
// ID. Region-scoped fault injection keys on it.
func (g *Graph) NodesOf(provider, region string) []*Node {
	return g.NodesWhere(func(n *Node) bool {
		return n.Provider == provider && n.Region == region
	})
}

// Path is an ordered sequence of links from a source to a destination.
type Path []*Link

// Delay returns the total propagation delay along the path.
func (p Path) Delay() time.Duration {
	var d time.Duration
	for _, l := range p {
		d += l.Delay
	}
	return d
}

// Jitter returns the total jitter bound along the path.
func (p Path) Jitter() time.Duration {
	var d time.Duration
	for _, l := range p {
		d += l.Jitter
	}
	return d
}

// DeliveryProb returns the probability a packet survives every hop.
func (p Path) DeliveryProb() float64 {
	prob := 1.0
	for _, l := range p {
		prob *= 1 - l.Loss
	}
	return prob
}

// Bottleneck returns the smallest link capacity along the path, or 0 for
// an empty path.
func (p Path) Bottleneck() float64 {
	if len(p) == 0 {
		return 0
	}
	min := p[0].Capacity
	for _, l := range p[1:] {
		if l.Capacity < min {
			min = l.Capacity
		}
	}
	return min
}

// Nodes returns the node sequence the path visits (len(p)+1 entries), or
// nil for an empty path.
func (p Path) Nodes() []NodeID {
	if len(p) == 0 {
		return nil
	}
	out := make([]NodeID, 0, len(p)+1)
	out = append(out, p[0].From)
	for _, l := range p {
		out = append(out, l.To)
	}
	return out
}

// PathOpts constrains path search.
type PathOpts struct {
	// Forbid excludes links of the given kinds.
	Forbid map[LinkKind]bool
	// AvoidCost adds a large penalty to links of the given kinds instead
	// of excluding them (soft avoidance; used by cold-potato routing to
	// prefer backbone over transit without partitioning).
	Avoid map[LinkKind]bool
}

// avoidPenalty must dominate any realistic path delay so avoided links are
// taken only when no alternative exists.
const avoidPenalty = 10 * time.Second

// pqItem is one heap entry: a node (by arena index) at a tentative
// distance. Ordering is (dist, NodeID) lexicographic so pop order matches
// the linear-scan Dijkstra this replaced — ties settle on the smaller
// node ID, keeping path selection byte-identical.
type pqItem struct {
	dist time.Duration
	node int32
}

// pathScratch is the per-search working state, pooled on the graph so
// steady-state searches allocate only the result path. Slices are indexed
// by arena index; seen/visited are cleared after every search.
type pathScratch struct {
	dist    []time.Duration
	prev    []*Link
	seen    []bool // dist/prev valid this search
	visited []bool
	heap    []pqItem
}

func (g *Graph) getScratch() *pathScratch {
	sc, _ := g.scratch.Get().(*pathScratch)
	if sc == nil {
		sc = &pathScratch{}
	}
	if n := len(g.nodeList); len(sc.dist) < n {
		sc.dist = make([]time.Duration, n)
		sc.prev = make([]*Link, n)
		sc.seen = make([]bool, n)
		sc.visited = make([]bool, n)
	}
	return sc
}

func (g *Graph) putScratch(sc *pathScratch) {
	clear(sc.seen)
	clear(sc.visited)
	sc.heap = sc.heap[:0]
	g.scratch.Put(sc)
}

// less orders heap entries by (dist, NodeID).
func (g *Graph) less(a, b pqItem) bool {
	if a.dist != b.dist {
		return a.dist < b.dist
	}
	return g.nodeList[a.node].ID < g.nodeList[b.node].ID
}

func (g *Graph) heapPush(h []pqItem, it pqItem) []pqItem {
	h = append(h, it)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !g.less(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	return h
}

func (g *Graph) heapPop(h []pqItem) ([]pqItem, pqItem) {
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		least := i
		if l < n && g.less(h[l], h[least]) {
			least = l
		}
		if r < n && g.less(h[r], h[least]) {
			least = r
		}
		if least == i {
			break
		}
		h[i], h[least] = h[least], h[i]
		i = least
	}
	return h, top
}

// ShortestPath returns the minimum-delay path from src to dst honoring the
// options, or an error when dst is unreachable. Heap-based Dijkstra over
// link delay (plus penalties) with deterministic tie-breaking: equal-cost
// frontier nodes pop in NodeID order and adjacency relaxes in link-ID
// order with strict improvement, so the chosen path is identical to the
// original linear-scan implementation's. Safe for concurrent callers (the
// per-search scratch is pooled) as long as the graph is not mutated
// concurrently.
func (g *Graph) ShortestPath(src, dst NodeID, opts PathOpts) (Path, error) {
	si, ok := g.idx[src]
	if !ok {
		return nil, fmt.Errorf("topo: unknown source %q", src)
	}
	di, ok := g.idx[dst]
	if !ok {
		return nil, fmt.Errorf("topo: unknown destination %q", dst)
	}
	sc := g.getScratch()
	defer g.putScratch(sc)
	dist, prev, seen, visited := sc.dist, sc.prev, sc.seen, sc.visited
	h := sc.heap[:0]

	dist[si], seen[si] = 0, true
	h = g.heapPush(h, pqItem{0, si})
	reached := false
	for len(h) > 0 {
		var it pqItem
		h, it = g.heapPop(h)
		cur := it.node
		if visited[cur] {
			continue // stale entry superseded by a closer one
		}
		if cur == di {
			reached = true
			break
		}
		visited[cur] = true
		for _, l := range g.adj[cur] {
			if l.down || opts.Forbid[l.Kind] {
				continue
			}
			w := l.Delay
			if opts.Avoid[l.Kind] {
				w += avoidPenalty
			}
			nd := dist[cur] + w
			if ti := l.toIdx; !seen[ti] || nd < dist[ti] {
				dist[ti], prev[ti], seen[ti] = nd, l, true
				h = g.heapPush(h, pqItem{nd, ti})
			}
		}
	}
	sc.heap = h[:0] // hand capacity back to the pool
	if !reached {
		return nil, fmt.Errorf("topo: %q unreachable from %q", dst, src)
	}
	// Reconstruct. Every node on the walk was seen this search, so prev is
	// current even though the pool does not clear it.
	var path Path
	for at := di; at != si; {
		l := prev[at]
		if l == nil {
			return nil, fmt.Errorf("topo: no path from %q to %q", src, dst)
		}
		path = append(path, l)
		at = l.fromIdx
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path, nil
}

// HostsOf returns the host nodes of a provider region, sorted by ID.
func (g *Graph) HostsOf(provider, region string) []*Node {
	return g.NodesWhere(func(n *Node) bool {
		return n.Kind == Host && n.Provider == provider && n.Region == region
	})
}
