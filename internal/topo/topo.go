// Package topo models the physical substrate the paper's scenarios run
// over: multiple cloud providers with regions and WAN backbones, the public
// internet between them, internet exchange points (IXPs), on-premises
// datacenters, and dedicated connections (the Direct-Connect/ExpressRoute/
// MPLS class of links from §2 step 4 of the paper).
//
// The graph is directed (each physical link is a pair of directed edges) so
// asymmetric provisioning is expressible. Link attributes carry everything
// the flow-level simulator in package netsim needs: capacity, propagation
// delay, jitter bound, and loss probability.
package topo

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// NodeKind classifies graph nodes.
type NodeKind int

const (
	// Host is a VM/container endpoint.
	Host NodeKind = iota
	// ZoneFabric abstracts a zone's top-of-rack/aggregation layers.
	ZoneFabric
	// RegionRouter is a region's core router inside a provider.
	RegionRouter
	// BorderRouter is a provider exit/entry point to the public internet.
	BorderRouter
	// BackboneRouter is an interior node of a provider's private WAN.
	BackboneRouter
	// IXPRouter is a router at an internet exchange / colocation facility.
	IXPRouter
	// InternetCore is an abstract public-internet transit node.
	InternetCore
	// OnPremRouter is the edge router of a private datacenter.
	OnPremRouter
)

var nodeKindNames = map[NodeKind]string{
	Host: "host", ZoneFabric: "zone", RegionRouter: "region",
	BorderRouter: "border", BackboneRouter: "backbone", IXPRouter: "ixp",
	InternetCore: "inet", OnPremRouter: "onprem",
}

func (k NodeKind) String() string { return nodeKindNames[k] }

// LinkKind classifies links, which is what QoS path policy keys on.
type LinkKind int

const (
	// Access connects hosts to their zone fabric.
	Access LinkKind = iota
	// Fabric connects zone fabrics to region routers.
	Fabric
	// Backbone is a provider's private inter-region WAN link.
	Backbone
	// Transit is a public-internet link (border<->inet, inet<->inet).
	Transit
	// Dedicated is a provisioned private circuit (DX/ER/MPLS class).
	Dedicated
	// XConn is an intra-facility cross-connect at an IXP.
	XConn
)

var linkKindNames = map[LinkKind]string{
	Access: "access", Fabric: "fabric", Backbone: "backbone",
	Transit: "transit", Dedicated: "dedicated", XConn: "xconn",
}

func (k LinkKind) String() string { return linkKindNames[k] }

// NodeID names a node uniquely within a graph.
type NodeID string

// Node is a vertex of the substrate graph.
type Node struct {
	ID       NodeID
	Kind     NodeKind
	Provider string // cloud provider name; "" for internet/IXP nodes
	Region   string // region name within the provider; "" when N/A
	Zone     string // availability zone; "" when N/A
}

// Link is a directed edge with transmission characteristics.
type Link struct {
	ID       string
	From, To NodeID
	Kind     LinkKind
	// Capacity is the link rate in bits per second.
	Capacity float64
	// Delay is the one-way propagation delay.
	Delay time.Duration
	// Jitter is the bound of uniformly distributed extra delay.
	Jitter time.Duration
	// Loss is the per-traversal packet loss probability in [0,1).
	Loss float64
	// down marks a failed link; set through Graph.SetLinkUp.
	down bool
}

// Up reports whether the link is in service.
func (l *Link) Up() bool { return !l.down }

// Graph is the substrate topology. Construct with New and the Add methods;
// it is not safe for concurrent mutation.
type Graph struct {
	nodes map[NodeID]*Node
	links map[string]*Link
	out   map[NodeID][]*Link
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		nodes: make(map[NodeID]*Node),
		links: make(map[string]*Link),
		out:   make(map[NodeID][]*Link),
	}
}

// AddNode inserts a node; duplicate IDs are an error.
func (g *Graph) AddNode(n Node) (*Node, error) {
	if _, ok := g.nodes[n.ID]; ok {
		return nil, fmt.Errorf("topo: duplicate node %q", n.ID)
	}
	cp := n
	g.nodes[n.ID] = &cp
	return &cp, nil
}

// MustAddNode is AddNode for builders; it panics on error.
func (g *Graph) MustAddNode(n Node) *Node {
	node, err := g.AddNode(n)
	if err != nil {
		panic(err)
	}
	return node
}

// Node returns the node with the given ID.
func (g *Graph) Node(id NodeID) (*Node, bool) {
	n, ok := g.nodes[id]
	return n, ok
}

// Nodes returns all nodes sorted by ID.
func (g *Graph) Nodes() []*Node {
	out := make([]*Node, 0, len(g.nodes))
	for _, n := range g.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// NodesWhere returns all nodes matching the predicate, sorted by ID.
func (g *Graph) NodesWhere(pred func(*Node) bool) []*Node {
	var out []*Node
	for _, n := range g.nodes {
		if pred(n) {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// AddLink inserts one directed link. Endpoints must exist.
func (g *Graph) AddLink(l Link) (*Link, error) {
	if _, ok := g.nodes[l.From]; !ok {
		return nil, fmt.Errorf("topo: link %q from unknown node %q", l.ID, l.From)
	}
	if _, ok := g.nodes[l.To]; !ok {
		return nil, fmt.Errorf("topo: link %q to unknown node %q", l.ID, l.To)
	}
	if _, ok := g.links[l.ID]; ok {
		return nil, fmt.Errorf("topo: duplicate link %q", l.ID)
	}
	if l.Capacity <= 0 {
		return nil, fmt.Errorf("topo: link %q has non-positive capacity", l.ID)
	}
	if l.Loss < 0 || l.Loss >= 1 {
		return nil, fmt.Errorf("topo: link %q has loss %v outside [0,1)", l.ID, l.Loss)
	}
	cp := l
	g.links[l.ID] = &cp
	g.out[l.From] = append(g.out[l.From], &cp)
	return &cp, nil
}

// Connect adds a symmetric pair of directed links with shared attributes,
// naming them "<id>:fwd" and "<id>:rev".
func (g *Graph) Connect(id string, a, b NodeID, kind LinkKind, capacity float64, delay, jitter time.Duration, loss float64) error {
	if _, err := g.AddLink(Link{ID: id + ":fwd", From: a, To: b, Kind: kind,
		Capacity: capacity, Delay: delay, Jitter: jitter, Loss: loss}); err != nil {
		return err
	}
	_, err := g.AddLink(Link{ID: id + ":rev", From: b, To: a, Kind: kind,
		Capacity: capacity, Delay: delay, Jitter: jitter, Loss: loss})
	return err
}

// MustConnect is Connect for builders; it panics on error.
func (g *Graph) MustConnect(id string, a, b NodeID, kind LinkKind, capacity float64, delay, jitter time.Duration, loss float64) {
	if err := g.Connect(id, a, b, kind, capacity, delay, jitter, loss); err != nil {
		panic(err)
	}
}

// Link returns the link with the given ID.
func (g *Graph) Link(id string) (*Link, bool) {
	l, ok := g.links[id]
	return l, ok
}

// SetLinkUp fails or restores one directed link. Use SetPairUp for the
// usual case of a whole physical link.
func (g *Graph) SetLinkUp(id string, up bool) error {
	l, ok := g.links[id]
	if !ok {
		return fmt.Errorf("topo: unknown link %q", id)
	}
	l.down = !up
	return nil
}

// SetPairUp fails or restores both directions of a link created with
// Connect (ids "<id>:fwd" and "<id>:rev").
func (g *Graph) SetPairUp(id string, up bool) error {
	if err := g.SetLinkUp(id+":fwd", up); err != nil {
		return err
	}
	return g.SetLinkUp(id+":rev", up)
}

// Links returns all links sorted by ID.
func (g *Graph) Links() []*Link {
	out := make([]*Link, 0, len(g.links))
	for _, l := range g.links {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Out returns the links leaving node id.
func (g *Graph) Out(id NodeID) []*Link { return g.out[id] }

// Incident returns every directed link touching the node — leaving or
// entering it — sorted by ID. Fault injection uses it to take a whole
// node out of service by failing its attached links.
func (g *Graph) Incident(id NodeID) []*Link {
	var out []*Link
	for _, l := range g.links {
		if l.From == id || l.To == id {
			out = append(out, l)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// NodesOf returns the nodes of a provider region (all kinds), sorted by
// ID. Region-scoped fault injection keys on it.
func (g *Graph) NodesOf(provider, region string) []*Node {
	return g.NodesWhere(func(n *Node) bool {
		return n.Provider == provider && n.Region == region
	})
}

// Path is an ordered sequence of links from a source to a destination.
type Path []*Link

// Delay returns the total propagation delay along the path.
func (p Path) Delay() time.Duration {
	var d time.Duration
	for _, l := range p {
		d += l.Delay
	}
	return d
}

// Jitter returns the total jitter bound along the path.
func (p Path) Jitter() time.Duration {
	var d time.Duration
	for _, l := range p {
		d += l.Jitter
	}
	return d
}

// DeliveryProb returns the probability a packet survives every hop.
func (p Path) DeliveryProb() float64 {
	prob := 1.0
	for _, l := range p {
		prob *= 1 - l.Loss
	}
	return prob
}

// Bottleneck returns the smallest link capacity along the path, or 0 for
// an empty path.
func (p Path) Bottleneck() float64 {
	if len(p) == 0 {
		return 0
	}
	min := p[0].Capacity
	for _, l := range p[1:] {
		if l.Capacity < min {
			min = l.Capacity
		}
	}
	return min
}

// Nodes returns the node sequence the path visits (len(p)+1 entries), or
// nil for an empty path.
func (p Path) Nodes() []NodeID {
	if len(p) == 0 {
		return nil
	}
	out := make([]NodeID, 0, len(p)+1)
	out = append(out, p[0].From)
	for _, l := range p {
		out = append(out, l.To)
	}
	return out
}

// PathOpts constrains path search.
type PathOpts struct {
	// Forbid excludes links of the given kinds.
	Forbid map[LinkKind]bool
	// AvoidCost adds a large penalty to links of the given kinds instead
	// of excluding them (soft avoidance; used by cold-potato routing to
	// prefer backbone over transit without partitioning).
	Avoid map[LinkKind]bool
}

// avoidPenalty must dominate any realistic path delay so avoided links are
// taken only when no alternative exists.
const avoidPenalty = 10 * time.Second

// ShortestPath returns the minimum-delay path from src to dst honoring the
// options, or an error when dst is unreachable. Dijkstra over link delay
// (plus penalties) with deterministic tie-breaking on link ID.
func (g *Graph) ShortestPath(src, dst NodeID, opts PathOpts) (Path, error) {
	if _, ok := g.nodes[src]; !ok {
		return nil, fmt.Errorf("topo: unknown source %q", src)
	}
	if _, ok := g.nodes[dst]; !ok {
		return nil, fmt.Errorf("topo: unknown destination %q", dst)
	}
	dist := map[NodeID]time.Duration{src: 0}
	prev := map[NodeID]*Link{}
	visited := map[NodeID]bool{}
	for {
		// Extract the unvisited node with the smallest distance. Linear
		// scan keeps the code simple; graphs here are hundreds of nodes.
		var cur NodeID
		best := time.Duration(math.MaxInt64)
		found := false
		for id, d := range dist {
			if !visited[id] && (d < best || (d == best && (!found || id < cur))) {
				cur, best, found = id, d, true
			}
		}
		if !found {
			return nil, fmt.Errorf("topo: %q unreachable from %q", dst, src)
		}
		if cur == dst {
			break
		}
		visited[cur] = true
		links := append([]*Link(nil), g.out[cur]...)
		sort.Slice(links, func(i, j int) bool { return links[i].ID < links[j].ID })
		for _, l := range links {
			if l.down || opts.Forbid[l.Kind] {
				continue
			}
			w := l.Delay
			if opts.Avoid[l.Kind] {
				w += avoidPenalty
			}
			nd := dist[cur] + w
			if old, ok := dist[l.To]; !ok || nd < old {
				dist[l.To] = nd
				prev[l.To] = l
			}
		}
	}
	// Reconstruct.
	var path Path
	for at := dst; at != src; {
		l := prev[at]
		if l == nil {
			return nil, fmt.Errorf("topo: no path from %q to %q", src, dst)
		}
		path = append(path, l)
		at = l.From
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path, nil
}

// HostsOf returns the host nodes of a provider region, sorted by ID.
func (g *Graph) HostsOf(provider, region string) []*Node {
	return g.NodesWhere(func(n *Node) bool {
		return n.Kind == Host && n.Provider == provider && n.Region == region
	})
}
