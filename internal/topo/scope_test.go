package topo

import (
	"testing"
	"time"
)

// scopedGraph builds two provider regions (awsA: a1-a2, awsB: b1-b2)
// joined by a cross-region backbone, plus an unregioned internet node.
func scopedGraph(t *testing.T) *Graph {
	t.Helper()
	g := New()
	g.MustAddNode(Node{ID: "a1", Provider: "aws", Region: "A"})
	g.MustAddNode(Node{ID: "a2", Provider: "aws", Region: "A"})
	g.MustAddNode(Node{ID: "b1", Provider: "aws", Region: "B"})
	g.MustAddNode(Node{ID: "b2", Provider: "aws", Region: "B"})
	g.MustAddNode(Node{ID: "inet"})
	g.MustConnect("aa", "a1", "a2", Fabric, Gbps, time.Millisecond, 0, 0)
	g.MustConnect("bb", "b1", "b2", Fabric, Gbps, time.Millisecond, 0, 0)
	g.MustConnect("ab", "a2", "b1", Backbone, Gbps, 10*time.Millisecond, 0, 0)
	g.MustConnect("ai", "a2", "inet", Transit, Gbps, 10*time.Millisecond, 0, 0)
	return g
}

func linkScope(t *testing.T, g *Graph, id string) Scope {
	t.Helper()
	l, ok := g.Link(id)
	if !ok {
		t.Fatalf("unknown link %q", id)
	}
	return l.Scope()
}

func TestScopeAssignment(t *testing.T) {
	g := scopedGraph(t)
	sa := linkScope(t, g, "aa:fwd")
	sb := linkScope(t, g, "bb:fwd")
	if sa == CrossCut || sb == CrossCut {
		t.Fatalf("intra-region links got CrossCut (aa=%d bb=%d)", sa, sb)
	}
	if sa == sb {
		t.Fatalf("regions A and B share scope %d", sa)
	}
	if s := linkScope(t, g, "aa:rev"); s != sa {
		t.Fatalf("aa:rev scope %d != aa:fwd scope %d", s, sa)
	}
	// Cross-region and region-to-internet links are cut links.
	if s := linkScope(t, g, "ab:fwd"); s != CrossCut {
		t.Fatalf("cross-region link scope %d, want CrossCut", s)
	}
	if s := linkScope(t, g, "ai:fwd"); s != CrossCut {
		t.Fatalf("region-internet link scope %d, want CrossCut", s)
	}
	// Same region name under a different provider is a different scope.
	g.MustAddNode(Node{ID: "g1", Provider: "gcp", Region: "A"})
	g.MustAddNode(Node{ID: "g2", Provider: "gcp", Region: "A"})
	g.MustConnect("gg", "g1", "g2", Fabric, Gbps, time.Millisecond, 0, 0)
	if s := linkScope(t, g, "gg:fwd"); s == sa || s == CrossCut {
		t.Fatalf("gcp/A scope %d collides (aws/A=%d)", s, sa)
	}
	if n := g.NumScopes(); n != 4 { // CrossCut, aws/A, aws/B, gcp/A
		t.Fatalf("NumScopes=%d, want 4", n)
	}
}

// TestScopedEpochBumps pins the asymmetric invalidation contract:
// failing a link bumps only its scope's epoch, restoring bumps only
// flushEpoch, and unrelated scopes never move.
func TestScopedEpochBumps(t *testing.T) {
	g := scopedGraph(t)
	sa := linkScope(t, g, "aa:fwd")
	sb := linkScope(t, g, "bb:fwd")
	type snap struct{ global, flush, cross, a, b uint64 }
	take := func() snap {
		return snap{g.Epoch(), g.FlushEpoch(), g.ScopeEpoch(CrossCut),
			g.ScopeEpoch(sa), g.ScopeEpoch(sb)}
	}
	before := take()
	if err := g.SetPairUp("aa", false); err != nil {
		t.Fatal(err)
	}
	after := take()
	want := snap{before.global + 1, before.flush, before.cross, before.a + 1, before.b}
	if after != want {
		t.Fatalf("fail aa: epochs %+v, want %+v", after, want)
	}
	before = after
	if err := g.SetPairUp("ab", false); err != nil {
		t.Fatal(err)
	}
	after = take()
	want = snap{before.global + 1, before.flush, before.cross + 1, before.a, before.b}
	if after != want {
		t.Fatalf("fail ab (cross-cut): epochs %+v, want %+v", after, want)
	}
	before = after
	if err := g.SetPairUp("aa", true); err != nil {
		t.Fatal(err)
	}
	after = take()
	want = snap{before.global + 1, before.flush + 1, before.cross, before.a, before.b}
	if after != want {
		t.Fatalf("restore aa: epochs %+v, want %+v", after, want)
	}
	// Restoring an already-up link still flushes: callers rely on the
	// bump to force recomputation.
	before = after
	if err := g.SetLinkUp("aa:fwd", true); err != nil {
		t.Fatal(err)
	}
	if got := g.FlushEpoch(); got != before.flush+1 {
		t.Fatalf("no-op restore: flush %d, want %d", got, before.flush+1)
	}
}

// TestBatchCoalescesBumps: a batch advances each counter at most once
// no matter how many mutations it contains.
func TestBatchCoalescesBumps(t *testing.T) {
	g := scopedGraph(t)
	sa := linkScope(t, g, "aa:fwd")
	sb := linkScope(t, g, "bb:fwd")
	g0, f0, a0, b0 := g.Epoch(), g.FlushEpoch(), g.ScopeEpoch(sa), g.ScopeEpoch(sb)
	err := g.Batch(func() error {
		if err := g.SetPairUp("aa", false); err != nil {
			return err
		}
		if err := g.SetLinkUp("aa:fwd", false); err != nil { // same scope again
			return err
		}
		if err := g.SetPairUp("bb", false); err != nil {
			return err
		}
		// Mid-batch, nothing has advanced yet.
		if g.Epoch() != g0 || g.ScopeEpoch(sa) != a0 {
			t.Errorf("mid-batch bump leaked (epoch %d->%d)", g0, g.Epoch())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if g.Epoch() != g0+1 {
		t.Fatalf("global epoch %d, want %d (one per batch)", g.Epoch(), g0+1)
	}
	if g.ScopeEpoch(sa) != a0+1 || g.ScopeEpoch(sb) != b0+1 {
		t.Fatalf("scope epochs a=%d b=%d, want %d/%d", g.ScopeEpoch(sa), g.ScopeEpoch(sb), a0+1, b0+1)
	}
	if g.FlushEpoch() != f0 {
		t.Fatalf("flush epoch moved on degrading batch (%d -> %d)", f0, g.FlushEpoch())
	}
	// A batch containing a restore flushes — once.
	err = g.Batch(func() error {
		if err := g.SetPairUp("aa", true); err != nil {
			return err
		}
		return g.SetPairUp("bb", true)
	})
	if err != nil {
		t.Fatal(err)
	}
	if g.FlushEpoch() != f0+1 {
		t.Fatalf("flush epoch %d, want %d (one per batch)", g.FlushEpoch(), f0+1)
	}
	// Empty batches advance nothing; nested batches coalesce into the
	// outermost.
	e1 := g.Epoch()
	_ = g.Batch(func() error { return nil })
	if g.Epoch() != e1 {
		t.Fatal("empty batch bumped epoch")
	}
	_ = g.Batch(func() error {
		return g.Batch(func() error { return g.SetPairUp("aa", false) })
	})
	if g.Epoch() != e1+1 {
		t.Fatalf("nested batch bumped %d times, want 1", g.Epoch()-e1)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("EndBatch without BeginBatch did not panic")
		}
	}()
	g.EndBatch()
}
