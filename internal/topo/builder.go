package topo

import (
	"fmt"
	"time"
)

// Convenient rate units in bits per second.
const (
	Kbps = 1e3
	Mbps = 1e6
	Gbps = 1e9
	Tbps = 1e12
)

// RegionSpec describes one region to build.
type RegionSpec struct {
	Name  string
	Zones int
	// HostsPerZone hosts are attached to each zone fabric.
	HostsPerZone int
}

// ProviderSpec describes one cloud provider to build.
type ProviderSpec struct {
	Name    string
	Regions []RegionSpec
	// BackboneCapacity is the inter-region WAN link rate (default 100 Gbps).
	BackboneCapacity float64
	// BackboneDelay approximates inter-region distance (default 30ms).
	BackboneDelay time.Duration
}

// Builder incrementally assembles a multi-cloud world graph.
type Builder struct {
	g *Graph
}

// NewBuilder returns a builder over a fresh graph.
func NewBuilder() *Builder { return &Builder{g: New()} }

// Graph returns the built graph.
func (b *Builder) Graph() *Graph { return b.g }

// Names for the node IDs a builder generates, so callers can find them.
func HostID(provider, region, zone string, i int) NodeID {
	return NodeID(fmt.Sprintf("%s/%s/%s/host%d", provider, region, zone, i))
}
func ZoneID(provider, region, zone string) NodeID {
	return NodeID(fmt.Sprintf("%s/%s/%s/fabric", provider, region, zone))
}
func RegionRouterID(provider, region string) NodeID {
	return NodeID(fmt.Sprintf("%s/%s/core", provider, region))
}
func BorderID(provider, region string) NodeID {
	return NodeID(fmt.Sprintf("%s/%s/border", provider, region))
}
func IXPID(name string) NodeID      { return NodeID("ixp/" + name) }
func OnPremID(name string) NodeID   { return NodeID("onprem/" + name) }
func InternetID(name string) NodeID { return NodeID("inet/" + name) }

// AddProvider builds a provider: per region a core router, a border
// router, zone fabrics and hosts; regions joined by a full-mesh private
// backbone; each border attached to the public internet core.
func (b *Builder) AddProvider(spec ProviderSpec) {
	g := b.g
	if spec.BackboneCapacity == 0 {
		spec.BackboneCapacity = 100 * Gbps
	}
	if spec.BackboneDelay == 0 {
		spec.BackboneDelay = 20 * time.Millisecond
	}
	for _, r := range spec.Regions {
		core := g.MustAddNode(Node{ID: RegionRouterID(spec.Name, r.Name), Kind: RegionRouter, Provider: spec.Name, Region: r.Name})
		border := g.MustAddNode(Node{ID: BorderID(spec.Name, r.Name), Kind: BorderRouter, Provider: spec.Name, Region: r.Name})
		g.MustConnect(fmt.Sprintf("%s/%s/core-border", spec.Name, r.Name),
			core.ID, border.ID, Backbone, spec.BackboneCapacity, time.Millisecond, 100*time.Microsecond, 0)
		for z := 0; z < r.Zones; z++ {
			zone := fmt.Sprintf("az%d", z+1)
			fabric := g.MustAddNode(Node{ID: ZoneID(spec.Name, r.Name, zone), Kind: ZoneFabric, Provider: spec.Name, Region: r.Name, Zone: zone})
			g.MustConnect(fmt.Sprintf("%s/%s/%s/uplink", spec.Name, r.Name, zone),
				fabric.ID, core.ID, Fabric, 400*Gbps, 500*time.Microsecond, 50*time.Microsecond, 0)
			for h := 0; h < r.HostsPerZone; h++ {
				host := g.MustAddNode(Node{ID: HostID(spec.Name, r.Name, zone, h+1), Kind: Host, Provider: spec.Name, Region: r.Name, Zone: zone})
				g.MustConnect(fmt.Sprintf("%s/%s/%s/h%d", spec.Name, r.Name, zone, h+1),
					host.ID, fabric.ID, Access, 10*Gbps, 50*time.Microsecond, 10*time.Microsecond, 0)
			}
		}
	}
	// Full-mesh backbone between the provider's regions.
	for i := 0; i < len(spec.Regions); i++ {
		for j := i + 1; j < len(spec.Regions); j++ {
			a, c := spec.Regions[i].Name, spec.Regions[j].Name
			g.MustConnect(fmt.Sprintf("%s/bb/%s-%s", spec.Name, a, c),
				RegionRouterID(spec.Name, a), RegionRouterID(spec.Name, c),
				Backbone, spec.BackboneCapacity, spec.BackboneDelay, 500*time.Microsecond, 1e-6)
		}
	}
}

// AddInternetCore builds n abstract transit nodes in a ring with chords,
// representing the public internet between providers, and returns their
// IDs. Transit links carry higher delay, jitter, and loss than backbones.
func (b *Builder) AddInternetCore(n int) []NodeID {
	g := b.g
	ids := make([]NodeID, n)
	for i := 0; i < n; i++ {
		id := InternetID(fmt.Sprintf("t%d", i+1))
		g.MustAddNode(Node{ID: id, Kind: InternetCore})
		ids[i] = id
	}
	for i := 0; i < n; i++ {
		next := (i + 1) % n
		if n > 1 && i < next || n == 1 {
			g.MustConnect(fmt.Sprintf("inet/ring%d-%d", i+1, next+1),
				ids[i], ids[next], Transit, 400*Gbps, 35*time.Millisecond, 5*time.Millisecond, 1e-4)
		}
	}
	if n > 2 { // close the ring
		g.MustConnect(fmt.Sprintf("inet/ring%d-%d", n, 1),
			ids[n-1], ids[0], Transit, 400*Gbps, 35*time.Millisecond, 5*time.Millisecond, 1e-4)
	}
	return ids
}

// AttachBorderToInternet connects a provider region's border router to a
// transit node over a public peering link.
func (b *Builder) AttachBorderToInternet(provider, region string, transit NodeID) {
	b.g.MustConnect(fmt.Sprintf("%s/%s/peer-%s", provider, region, transit),
		BorderID(provider, region), transit, Transit, 200*Gbps, 12*time.Millisecond, 4*time.Millisecond, 1e-4)
}

// AddIXP builds an exchange-point router and returns its ID.
func (b *Builder) AddIXP(name string) NodeID {
	id := IXPID(name)
	b.g.MustAddNode(Node{ID: id, Kind: IXPRouter})
	return id
}

// AttachIXPToInternet gives the exchange public connectivity.
func (b *Builder) AttachIXPToInternet(ixp, transit NodeID) {
	b.g.MustConnect(fmt.Sprintf("%s/peer-%s", ixp, transit),
		ixp, transit, Transit, 200*Gbps, 10*time.Millisecond, 2*time.Millisecond, 1e-4)
}

// AddDedicated provisions a dedicated circuit (Direct-Connect class)
// between a provider border router and an IXP router.
func (b *Builder) AddDedicated(name string, provider, region string, ixp NodeID, capacity float64) {
	b.g.MustConnect("dx/"+name,
		BorderID(provider, region), ixp, Dedicated, capacity, 10*time.Millisecond, 50*time.Microsecond, 1e-7)
}

// AddOnPrem builds a private datacenter: an edge router plus hosts.
func (b *Builder) AddOnPrem(name string, hosts int) NodeID {
	g := b.g
	edge := g.MustAddNode(Node{ID: OnPremID(name), Kind: OnPremRouter, Provider: "onprem", Region: name})
	for h := 0; h < hosts; h++ {
		id := NodeID(fmt.Sprintf("onprem/%s/host%d", name, h+1))
		g.MustAddNode(Node{ID: id, Kind: Host, Provider: "onprem", Region: name})
		g.MustConnect(fmt.Sprintf("onprem/%s/h%d", name, h+1),
			id, edge.ID, Access, 10*Gbps, 100*time.Microsecond, 10*time.Microsecond, 0)
	}
	return edge.ID
}

// AttachOnPremToInternet gives a datacenter public connectivity.
func (b *Builder) AttachOnPremToInternet(onprem, transit NodeID) {
	b.g.MustConnect(fmt.Sprintf("%s/peer-%s", onprem, transit),
		onprem, transit, Transit, 10*Gbps, 12*time.Millisecond, 3*time.Millisecond, 2e-4)
}

// AddMPLS provisions a private MPLS circuit between an on-prem edge and an
// IXP router (the "MPLS connection to an on-prem location" from §2).
func (b *Builder) AddMPLS(name string, onprem, ixp NodeID, capacity float64) {
	b.g.MustConnect("mpls/"+name,
		onprem, ixp, Dedicated, capacity, 8*time.Millisecond, 100*time.Microsecond, 1e-7)
}

// Fig1World reproduces the deployment of the paper's Figure 1: a tenant
// spanning two cloud providers (two regions each), an on-prem datacenter,
// an exchange facility with dedicated connections from each cloud and an
// MPLS link to on-prem, and the public internet connecting everything.
type Fig1World struct {
	Graph    *Graph
	CloudA   string // "aws-like" provider
	CloudB   string // "azure-like" provider
	RegionsA []string
	RegionsB []string
	OnPrem   NodeID
	IXP      NodeID
	Transit  []NodeID
}

// BuildFig1 constructs the Figure-1 world with hostsPerZone hosts in each
// of 2 zones per region.
func BuildFig1(hostsPerZone int) *Fig1World {
	b := NewBuilder()
	w := &Fig1World{
		CloudA:   "cloudA",
		CloudB:   "cloudB",
		RegionsA: []string{"a-east", "a-west"},
		RegionsB: []string{"b-east", "b-west"},
	}
	b.AddProvider(ProviderSpec{Name: w.CloudA, Regions: []RegionSpec{
		{Name: w.RegionsA[0], Zones: 2, HostsPerZone: hostsPerZone},
		{Name: w.RegionsA[1], Zones: 2, HostsPerZone: hostsPerZone},
	}})
	b.AddProvider(ProviderSpec{Name: w.CloudB, Regions: []RegionSpec{
		{Name: w.RegionsB[0], Zones: 2, HostsPerZone: hostsPerZone},
		{Name: w.RegionsB[1], Zones: 2, HostsPerZone: hostsPerZone},
	}})
	w.Transit = b.AddInternetCore(3)
	b.AttachBorderToInternet(w.CloudA, w.RegionsA[0], w.Transit[0])
	b.AttachBorderToInternet(w.CloudA, w.RegionsA[1], w.Transit[1])
	b.AttachBorderToInternet(w.CloudB, w.RegionsB[0], w.Transit[1])
	b.AttachBorderToInternet(w.CloudB, w.RegionsB[1], w.Transit[2])
	w.IXP = b.AddIXP("equinix-like")
	b.AttachIXPToInternet(w.IXP, w.Transit[0])
	b.AddDedicated("cloudA-dx", w.CloudA, w.RegionsA[0], w.IXP, 10*Gbps)
	b.AddDedicated("cloudB-er", w.CloudB, w.RegionsB[0], w.IXP, 10*Gbps)
	w.OnPrem = b.AddOnPrem("hq", hostsPerZone)
	b.AttachOnPremToInternet(w.OnPrem, w.Transit[2])
	b.AddMPLS("hq-mpls", w.OnPrem, w.IXP, 2*Gbps)
	w.Graph = b.Graph()
	return w
}
