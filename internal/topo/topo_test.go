package topo

import (
	"testing"
	"time"
)

func smallGraph(t *testing.T) *Graph {
	t.Helper()
	g := New()
	for _, id := range []NodeID{"a", "b", "c", "d"} {
		g.MustAddNode(Node{ID: id, Kind: RegionRouter})
	}
	// a-b (fast), b-c (fast), a-c (slow direct), c-d
	g.MustConnect("ab", "a", "b", Backbone, Gbps, 5*time.Millisecond, 0, 0)
	g.MustConnect("bc", "b", "c", Backbone, Gbps, 5*time.Millisecond, 0, 0)
	g.MustConnect("ac", "a", "c", Transit, Gbps, 50*time.Millisecond, time.Millisecond, 1e-3)
	g.MustConnect("cd", "c", "d", Backbone, 100*Mbps, 5*time.Millisecond, 0, 0)
	return g
}

func TestAddNodeDuplicate(t *testing.T) {
	g := New()
	g.MustAddNode(Node{ID: "x"})
	if _, err := g.AddNode(Node{ID: "x"}); err == nil {
		t.Fatal("duplicate node accepted")
	}
}

func TestAddLinkValidation(t *testing.T) {
	g := New()
	g.MustAddNode(Node{ID: "x"})
	g.MustAddNode(Node{ID: "y"})
	cases := []Link{
		{ID: "l1", From: "x", To: "nope", Capacity: 1},
		{ID: "l2", From: "nope", To: "y", Capacity: 1},
		{ID: "l3", From: "x", To: "y", Capacity: 0},
		{ID: "l4", From: "x", To: "y", Capacity: 1, Loss: 1.0},
		{ID: "l5", From: "x", To: "y", Capacity: 1, Loss: -0.1},
	}
	for _, l := range cases {
		if _, err := g.AddLink(l); err == nil {
			t.Errorf("invalid link %q accepted", l.ID)
		}
	}
	if _, err := g.AddLink(Link{ID: "ok", From: "x", To: "y", Capacity: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddLink(Link{ID: "ok", From: "x", To: "y", Capacity: 1}); err == nil {
		t.Fatal("duplicate link accepted")
	}
}

func TestShortestPathPrefersLowDelay(t *testing.T) {
	g := smallGraph(t)
	p, err := g.ShortestPath("a", "c", PathOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Delay(); got != 10*time.Millisecond {
		t.Fatalf("path delay = %v, want 10ms (a-b-c)", got)
	}
	nodes := p.Nodes()
	if len(nodes) != 3 || nodes[1] != "b" {
		t.Fatalf("path nodes = %v, want through b", nodes)
	}
}

func TestShortestPathForbid(t *testing.T) {
	g := smallGraph(t)
	// Forbidding backbone forces the direct transit link.
	p, err := g.ShortestPath("a", "c", PathOpts{Forbid: map[LinkKind]bool{Backbone: true}})
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 1 || p[0].Kind != Transit {
		t.Fatalf("forbid path = %v, want single transit hop", p.Nodes())
	}
}

func TestShortestPathAvoid(t *testing.T) {
	g := New()
	for _, id := range []NodeID{"a", "b"} {
		g.MustAddNode(Node{ID: id})
	}
	// Only a transit link exists; Avoid must still use it.
	g.MustConnect("ab", "a", "b", Transit, Gbps, 5*time.Millisecond, 0, 0)
	p, err := g.ShortestPath("a", "b", PathOpts{Avoid: map[LinkKind]bool{Transit: true}})
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 1 {
		t.Fatalf("avoid-only path = %v", p.Nodes())
	}
}

func TestShortestPathUnreachable(t *testing.T) {
	g := smallGraph(t)
	g.MustAddNode(Node{ID: "island"})
	if _, err := g.ShortestPath("a", "island", PathOpts{}); err == nil {
		t.Fatal("unreachable destination returned a path")
	}
	if _, err := g.ShortestPath("missing", "a", PathOpts{}); err == nil {
		t.Fatal("unknown source accepted")
	}
	if _, err := g.ShortestPath("a", "missing", PathOpts{}); err == nil {
		t.Fatal("unknown destination accepted")
	}
}

func TestShortestPathToSelf(t *testing.T) {
	g := smallGraph(t)
	p, err := g.ShortestPath("a", "a", PathOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 0 {
		t.Fatalf("self path = %v, want empty", p.Nodes())
	}
}

func TestPathProperties(t *testing.T) {
	g := smallGraph(t)
	p, err := g.ShortestPath("a", "d", PathOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Bottleneck(); got != 100*Mbps {
		t.Fatalf("Bottleneck = %v, want 100Mbps", got)
	}
	if got := p.DeliveryProb(); got != 1.0 {
		t.Fatalf("DeliveryProb = %v, want 1.0 (lossless path)", got)
	}
	var empty Path
	if empty.Bottleneck() != 0 || empty.Nodes() != nil || empty.Delay() != 0 {
		t.Fatal("empty path properties wrong")
	}
}

func TestPathLossAccumulates(t *testing.T) {
	g := New()
	for _, id := range []NodeID{"a", "b", "c"} {
		g.MustAddNode(Node{ID: id})
	}
	g.MustConnect("ab", "a", "b", Transit, Gbps, time.Millisecond, 0, 0.1)
	g.MustConnect("bc", "b", "c", Transit, Gbps, time.Millisecond, 0, 0.1)
	p, err := g.ShortestPath("a", "c", PathOpts{})
	if err != nil {
		t.Fatal(err)
	}
	want := 0.9 * 0.9
	if got := p.DeliveryProb(); got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("DeliveryProb = %v, want %v", got, want)
	}
	if got := p.Jitter(); got != 0 {
		t.Fatalf("Jitter = %v, want 0", got)
	}
}

func TestBuilderProvider(t *testing.T) {
	b := NewBuilder()
	b.AddProvider(ProviderSpec{Name: "p", Regions: []RegionSpec{
		{Name: "r1", Zones: 2, HostsPerZone: 3},
		{Name: "r2", Zones: 1, HostsPerZone: 2},
	}})
	g := b.Graph()
	if got := len(g.HostsOf("p", "r1")); got != 6 {
		t.Fatalf("r1 hosts = %d, want 6", got)
	}
	if got := len(g.HostsOf("p", "r2")); got != 2 {
		t.Fatalf("r2 hosts = %d, want 2", got)
	}
	// Host in r1 must reach host in r2 over the backbone.
	h1 := HostID("p", "r1", "az1", 1)
	h2 := HostID("p", "r2", "az1", 1)
	p, err := g.ShortestPath(h1, h2, PathOpts{})
	if err != nil {
		t.Fatal(err)
	}
	hasBackbone := false
	for _, l := range p {
		if l.Kind == Backbone {
			hasBackbone = true
		}
		if l.Kind == Transit {
			t.Fatal("intra-provider path crossed the public internet")
		}
	}
	if !hasBackbone {
		t.Fatal("inter-region path used no backbone link")
	}
}

func TestBuildFig1Connectivity(t *testing.T) {
	w := BuildFig1(2)
	g := w.Graph
	// Count the moving parts Figure 1 implies.
	hosts := g.NodesWhere(func(n *Node) bool { return n.Kind == Host })
	if len(hosts) != 2*2*2*2+2 { // 2 clouds x 2 regions x 2 zones x 2 hosts + 2 on-prem
		t.Fatalf("host count = %d", len(hosts))
	}
	// Cross-cloud reachability over the public internet.
	src := HostID(w.CloudA, w.RegionsA[0], "az1", 1)
	dst := HostID(w.CloudB, w.RegionsB[0], "az1", 1)
	p, err := g.ShortestPath(src, dst, PathOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Delay() <= 0 {
		t.Fatal("cross-cloud path has no delay")
	}
	// A dedicated-only inter-cloud path exists through the IXP.
	pd, err := g.ShortestPath(src, dst, PathOpts{Forbid: map[LinkKind]bool{Transit: true}})
	if err != nil {
		t.Fatalf("no dedicated path through IXP: %v", err)
	}
	sawDedicated := 0
	for _, l := range pd {
		if l.Kind == Dedicated {
			sawDedicated++
		}
	}
	if sawDedicated != 2 {
		t.Fatalf("dedicated path crossed %d dedicated links, want 2 (DX + ER via IXP)", sawDedicated)
	}
	// On-prem reachable from both clouds without transit via MPLS.
	onpremHost := NodeID("onprem/hq/host1")
	if _, err := g.ShortestPath(src, onpremHost, PathOpts{Forbid: map[LinkKind]bool{Transit: true}}); err != nil {
		t.Fatalf("no private path cloudA->onprem: %v", err)
	}
}

func TestKindStrings(t *testing.T) {
	if Host.String() != "host" || Dedicated.String() != "dedicated" {
		t.Fatal("kind name tables broken")
	}
}
