package topo

import (
	"testing"
	"time"
)

// TestEpochBumpsOncePerMutator pins the invalidation contract the path
// cache depends on: every successful mutator advances Epoch exactly once
// (SetPairUp counts as one transition, not two), and failed mutations
// leave it alone.
func TestEpochBumpsOncePerMutator(t *testing.T) {
	g := New()
	check := func(name string, want uint64, op func() error) {
		t.Helper()
		before := g.Epoch()
		err := op()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got := g.Epoch() - before; got != want {
			t.Errorf("%s bumped epoch %d times, want %d", name, got, want)
		}
	}
	check("AddNode", 1, func() error { _, err := g.AddNode(Node{ID: "a"}); return err })
	check("AddNode", 1, func() error { _, err := g.AddNode(Node{ID: "b"}); return err })
	check("AddLink", 1, func() error {
		_, err := g.AddLink(Link{ID: "ab:fwd", From: "a", To: "b", Capacity: 1})
		return err
	})
	check("AddLink", 1, func() error {
		_, err := g.AddLink(Link{ID: "ab:rev", From: "b", To: "a", Capacity: 1})
		return err
	})
	check("SetLinkUp", 1, func() error { return g.SetLinkUp("ab:fwd", false) })
	check("SetPairUp", 1, func() error { return g.SetPairUp("ab", true) })

	// Failed mutations must not bump: a no-op cannot invalidate caches.
	fail := func(name string, op func() error) {
		t.Helper()
		before := g.Epoch()
		if err := op(); err == nil {
			t.Fatalf("%s: want error", name)
		}
		if got := g.Epoch(); got != before {
			t.Errorf("%s bumped epoch on failure (%d -> %d)", name, before, got)
		}
	}
	fail("AddNode dup", func() error { _, err := g.AddNode(Node{ID: "a"}); return err })
	fail("AddLink dup", func() error {
		_, err := g.AddLink(Link{ID: "ab:fwd", From: "a", To: "b", Capacity: 1})
		return err
	})
	fail("SetLinkUp unknown", func() error { return g.SetLinkUp("nope", false) })
	fail("SetPairUp unknown", func() error { return g.SetPairUp("nope", false) })
}

func TestSetLinkUpUnknownID(t *testing.T) {
	g := New()
	if err := g.SetLinkUp("ghost", true); err == nil {
		t.Fatal("SetLinkUp on unknown id accepted")
	}
	if err := g.SetPairUp("ghost", true); err == nil {
		t.Fatal("SetPairUp on unknown id accepted")
	}
}

func TestSetPairUpFailsAndRestoresBothDirections(t *testing.T) {
	g := smallGraph(t)
	if err := g.SetPairUp("ab", false); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"ab:fwd", "ab:rev"} {
		l, ok := g.Link(id)
		if !ok || l.Up() {
			t.Fatalf("%s should be down", id)
		}
	}
	if err := g.SetPairUp("ab", true); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"ab:fwd", "ab:rev"} {
		l, _ := g.Link(id)
		if !l.Up() {
			t.Fatalf("%s should be up", id)
		}
	}
}

// TestIncidentOrdering: Incident returns every touching link, both
// directions, sorted by ID.
func TestIncidentOrdering(t *testing.T) {
	g := smallGraph(t)
	inc := g.Incident("c")
	want := []string{"ac:fwd", "ac:rev", "bc:fwd", "bc:rev", "cd:fwd", "cd:rev"}
	if len(inc) != len(want) {
		t.Fatalf("Incident(c) = %d links, want %d", len(inc), len(want))
	}
	for i, l := range inc {
		if l.ID != want[i] {
			t.Fatalf("Incident(c)[%d] = %s, want %s", i, l.ID, want[i])
		}
	}
}

// TestOutSorted: adjacency is presorted at mutation time, in link-ID
// order regardless of insertion order.
func TestOutSorted(t *testing.T) {
	g := New()
	for _, id := range []NodeID{"n", "p", "q", "r"} {
		g.MustAddNode(Node{ID: id})
	}
	// Insert deliberately out of ID order.
	for _, id := range []string{"zz", "aa", "mm"} {
		to := map[string]NodeID{"zz": "p", "aa": "q", "mm": "r"}[id]
		if _, err := g.AddLink(Link{ID: id, From: "n", To: to, Capacity: 1}); err != nil {
			t.Fatal(err)
		}
	}
	out := g.Out("n")
	want := []string{"aa", "mm", "zz"}
	for i, l := range out {
		if l.ID != want[i] {
			t.Fatalf("Out(n)[%d] = %s, want %s (presorted)", i, l.ID, want[i])
		}
	}
	if g.Out("ghost") != nil {
		t.Fatal("Out on unknown node should be nil")
	}
}

// TestShortestPathAfterMutation: the arena survives interleaved mutation
// and search (fresh nodes/links join path search immediately).
func TestShortestPathAfterMutation(t *testing.T) {
	g := smallGraph(t)
	if _, err := g.ShortestPath("a", "d", PathOpts{}); err != nil {
		t.Fatal(err)
	}
	g.MustAddNode(Node{ID: "e"})
	g.MustConnect("de", "d", "e", Backbone, Gbps, time.Millisecond, 0, 0)
	p, err := g.ShortestPath("a", "e", PathOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if got := p[len(p)-1].ID; got != "de:fwd" {
		t.Fatalf("last hop %s, want de:fwd", got)
	}
	// Fail it again: e drops out of reach.
	if err := g.SetPairUp("de", false); err != nil {
		t.Fatal(err)
	}
	if _, err := g.ShortestPath("a", "e", PathOpts{}); err == nil {
		t.Fatal("path to e should fail with de down")
	}
}
