package gateway

import (
	"strings"
	"testing"

	"declnet/internal/complexity"
	"declnet/internal/vnet"
)

func TestEgressOnlyIGWOutboundOnly(t *testing.T) {
	f, ia, _ := twoVPCFabric(t)
	// Destination with proper public exposure in vpc-b.
	f.CreateIGW("igw-b", "vpc-b")
	vb, _ := f.VPC("vpc-b")
	vb.AddRoute("sn", anywhere(), vnet.Target{Kind: vnet.TIGW, ID: "igw-b"})
	pubB, _ := f.AssignPublicIP("vpc-b", "i-b")
	// vpc-a gets only an egress-only gateway.
	if _, err := f.CreateEgressIGW("eigw-a", "vpc-a"); err != nil {
		t.Fatal(err)
	}
	va, _ := f.VPC("vpc-a")
	va.AddRoute("sn", anywhere(), vnet.Target{Kind: vnet.TEgressIGW, ID: "eigw-a"})
	// Outbound initiation works (stateful reply implied)...
	v := f.Evaluate(Source{Kind: FromInstance, VPCID: "vpc-a", InstanceID: "i-a"},
		vnet.Packet{Src: ia.PrivateIP, Dst: pubB, Proto: vnet.TCP, DstPort: 443})
	if !v.Delivered {
		t.Fatalf("egress-only outbound failed: %v", v)
	}
	// ...but i-a has no public binding, so nothing can initiate inbound.
	in := f.Evaluate(Source{Kind: FromInternet},
		vnet.Packet{Src: pubB, Dst: ia.PrivateIP, Proto: vnet.TCP, DstPort: 22})
	if in.Delivered {
		t.Fatal("inbound initiation through egress-only path delivered")
	}
}

func TestNATExhaustionDropsInPath(t *testing.T) {
	f, _, _ := twoVPCFabric(t)
	f.CreateIGW("igw-b", "vpc-b")
	vb, _ := f.VPC("vpc-b")
	vb.AddRoute("sn", anywhere(), vnet.Target{Kind: vnet.TIGW, ID: "igw-b"})
	pubB, _ := f.AssignPublicIP("vpc-b", "i-b")
	nat, err := f.CreateNAT("nat-a", "vpc-a", "sn")
	if err != nil {
		t.Fatal(err)
	}
	va, _ := f.VPC("vpc-a")
	va.AddRoute("sn", anywhere(), vnet.Target{Kind: vnet.TNAT, ID: "nat-a"})
	ia, _ := va.Instance("i-a")
	// Exhaust the translation range.
	for {
		if _, err := nat.AllocatePort(); err != nil {
			break
		}
	}
	v := f.Evaluate(Source{Kind: FromInstance, VPCID: "vpc-a", InstanceID: "i-a"},
		vnet.Packet{Src: ia.PrivateIP, Dst: pubB, Proto: vnet.TCP, DstPort: 443})
	if v.Delivered {
		t.Fatal("packet delivered through exhausted NAT")
	}
	if !strings.HasPrefix(v.DeniedAt, "nat:") {
		t.Fatalf("denied at %q, want nat", v.DeniedAt)
	}
}

func TestSiteEgressToInternet(t *testing.T) {
	f, _, _ := twoVPCFabric(t)
	f.CreateIGW("igw-a", "vpc-a")
	va, _ := f.VPC("vpc-a")
	va.AddRoute("sn", anywhere(), vnet.Target{Kind: vnet.TIGW, ID: "igw-a"})
	pubA, _ := f.AssignPublicIP("vpc-a", "i-a")
	site, _ := f.AddSite("hq", pfx("192.168.0.0/16"))
	site.AddRoute(anywhere(), vnet.Target{Kind: vnet.TIGW, ID: "edge"})
	v := f.Evaluate(Source{Kind: FromSite, SiteID: "hq"},
		vnet.Packet{Src: ipa("192.168.1.1"), Dst: pubA, Proto: vnet.TCP, DstPort: 443})
	if !v.Delivered {
		t.Fatalf("site -> internet -> VPC failed: %v", v)
	}
}

func TestBlackholeRoute(t *testing.T) {
	f, ia, _ := twoVPCFabric(t)
	va, _ := f.VPC("vpc-a")
	va.AddRoute("sn", pfx("203.0.113.0/24"), vnet.Target{Kind: vnet.TBlackhole})
	v := f.Evaluate(Source{Kind: FromInstance, VPCID: "vpc-a", InstanceID: "i-a"},
		vnet.Packet{Src: ia.PrivateIP, Dst: ipa("203.0.113.5"), Proto: vnet.TCP, DstPort: 443})
	if v.Delivered || v.DeniedAt != "blackhole" {
		t.Fatalf("blackhole route verdict: %v", v)
	}
}

func TestTGWRouteToWrongVPC(t *testing.T) {
	f, ia, _ := twoVPCFabric(t)
	f.CreateTGW("tgw", "east")
	f.AttachToTGW("tgw", "att-b", AttachVPC, "vpc-b")
	// Misconfigured static route: 10.9/16 does not belong to vpc-b.
	f.TGWRoute("tgw", pfx("10.9.0.0/16"), "att-b")
	va, _ := f.VPC("vpc-a")
	va.AddRoute("sn", pfx("10.9.0.0/16"), vnet.Target{Kind: vnet.TTGW, ID: "tgw"})
	v := f.Evaluate(Source{Kind: FromInstance, VPCID: "vpc-a", InstanceID: "i-a"},
		vnet.Packet{Src: ia.PrivateIP, Dst: ipa("10.9.1.1"), Proto: vnet.TCP, DstPort: 443})
	if v.Delivered {
		t.Fatal("TGW delivered to VPC not owning the destination")
	}
}

func TestSiteRouteValidation(t *testing.T) {
	f, _, _ := twoVPCFabric(t)
	site, _ := f.AddSite("hq", pfx("192.168.0.0/16"))
	// Unsupported site target kind.
	site.AddRoute(pfx("10.0.0.0/16"), vnet.Target{Kind: vnet.TNAT, ID: "x"})
	v := f.Evaluate(Source{Kind: FromSite, SiteID: "hq"},
		vnet.Packet{Src: ipa("192.168.1.1"), Dst: ipa("10.0.1.4"), Proto: vnet.TCP, DstPort: 22})
	if v.Delivered {
		t.Fatal("unsupported site route target delivered")
	}
	// Site delivery outside CIDR refused.
	f.CreateVGW("vgw", "vpc-a", "hq")
	va, _ := f.VPC("vpc-a")
	ia, _ := va.Instance("i-a")
	va.AddRoute("sn", pfx("172.16.0.0/12"), vnet.Target{Kind: vnet.TVGW, ID: "vgw"})
	out := f.Evaluate(Source{Kind: FromInstance, VPCID: "vpc-a", InstanceID: "i-a"},
		vnet.Packet{Src: ia.PrivateIP, Dst: ipa("172.16.1.1"), Proto: vnet.TCP, DstPort: 22})
	if out.Delivered {
		t.Fatal("VGW delivered outside site CIDR")
	}
}

func TestDuplicateGatewayIDs(t *testing.T) {
	f, _, _ := twoVPCFabric(t)
	if _, err := f.CreateIGW("igw", "vpc-a"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.CreateIGW("igw", "vpc-a"); err == nil {
		t.Fatal("duplicate IGW accepted")
	}
	if _, err := f.CreateTGW("tgw", "e"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.CreateTGW("tgw", "e"); err == nil {
		t.Fatal("duplicate TGW accepted")
	}
	if _, err := f.AddSite("hq", pfx("192.168.0.0/16")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.AddSite("hq", pfx("192.168.0.0/16")); err == nil {
		t.Fatal("duplicate site accepted")
	}
	if err := f.AttachToTGW("tgw", "a1", AttachVPC, "vpc-a"); err != nil {
		t.Fatal(err)
	}
	if err := f.AttachToTGW("tgw", "a1", AttachVPC, "vpc-b"); err == nil {
		t.Fatal("duplicate attachment accepted")
	}
	if err := f.AttachToTGW("tgw", "a2", AttachSite, "ghost"); err == nil {
		t.Fatal("attachment to unknown site accepted")
	}
	if err := f.AttachToTGW("tgw", "a3", AttachPeer, "ghost"); err == nil {
		t.Fatal("attachment to unknown peer accepted")
	}
	if err := f.TGWRoute("tgw", pfx("10.0.0.0/8"), "ghost"); err == nil {
		t.Fatal("route via unknown attachment accepted")
	}
	if err := f.TGWRoute("ghost", pfx("10.0.0.0/8"), "a1"); err == nil {
		t.Fatal("route on unknown TGW accepted")
	}
	var led complexity.Ledger
	_ = led
}

func TestAssignPublicIPValidation(t *testing.T) {
	f, _, _ := twoVPCFabric(t)
	if _, err := f.AssignPublicIP("ghost", "i-a"); err == nil {
		t.Fatal("unknown VPC accepted")
	}
	if _, err := f.AssignPublicIP("vpc-a", "ghost"); err == nil {
		t.Fatal("unknown instance accepted")
	}
	if _, err := f.AssignPublicIP("vpc-a", "i-a"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.AssignPublicIP("vpc-a", "i-a"); err == nil {
		t.Fatal("double public IP accepted")
	}
}
