// Package gateway implements the baseline's inter-network plumbing from §2
// of the paper: internet gateways, egress-only gateways, NAT gateways,
// virtual private gateways (VPN to on-prem sites), transit gateways with
// route tables and attachments, and VPC peering connections. A Fabric ties
// gateways and VPCs together and answers the reachability question a real
// packet would: can this packet get from here to there, and which box
// drops it if not?
//
// Semantics follow AWS where the paper references it: peering is
// non-transitive, security groups are stateful, NACLs stateless, NAT is
// egress-only with port allocation, transit gateways are region-scoped and
// connect to each other only via explicit TGW peering with static routes.
package gateway

import (
	"fmt"

	"declnet/internal/addr"
	"declnet/internal/complexity"
	"declnet/internal/routing"
	"declnet/internal/vnet"
)

// IGW is an internet gateway: the VPC's door to public addresses.
type IGW struct {
	ID    string
	VPCID string
}

// EgressIGW allows IPv6-style outbound-only internet access; inbound
// connection initiation through it is dropped.
type EgressIGW struct {
	ID    string
	VPCID string
}

// NATGateway translates private sources to its public address, allocating
// a distinct public port per flow. Egress-only by construction.
type NATGateway struct {
	ID       string
	VPCID    string
	SubnetID string
	PublicIP addr.IP

	nextPort int
	freed    []int
	active   map[int]bool
}

// AllocatePort reserves a translation port; it fails when the 1024..65535
// range is exhausted (the real operational limit of a NAT gateway).
func (n *NATGateway) AllocatePort() (int, error) {
	if len(n.freed) > 0 {
		p := n.freed[0]
		n.freed = n.freed[1:]
		n.active[p] = true
		return p, nil
	}
	if n.nextPort > 65535 {
		return 0, fmt.Errorf("gateway: NAT %s port range exhausted", n.ID)
	}
	p := n.nextPort
	n.nextPort++
	n.active[p] = true
	return p, nil
}

// ReleasePort returns a translation port to the pool.
func (n *NATGateway) ReleasePort(p int) error {
	if !n.active[p] {
		return fmt.Errorf("gateway: NAT %s release of unallocated port %d", n.ID, p)
	}
	delete(n.active, p)
	n.freed = append(n.freed, p)
	return nil
}

// ActivePorts reports the number of in-use translation ports.
func (n *NATGateway) ActivePorts() int { return len(n.active) }

// Site is an on-premises network reachable over VPN or TGW attachments.
type Site struct {
	ID   string
	CIDR addr.Prefix
	// rt routes traffic leaving the site: prefix -> gateway target.
	rt *vnet.RouteTable
}

// AddRoute installs an egress route at the site's edge router.
func (s *Site) AddRoute(p addr.Prefix, t vnet.Target) { s.rt.AddRoute(p, t) }

// VGW is a virtual private gateway: a VPN endpoint connecting one VPC to
// one site.
type VGW struct {
	ID     string
	VPCID  string
	SiteID string
}

// AttachmentKind classifies what a TGW attachment points at.
type AttachmentKind int

const (
	// AttachVPC attaches a VPC.
	AttachVPC AttachmentKind = iota
	// AttachSite attaches an on-prem site over VPN.
	AttachSite
	// AttachPeer attaches another TGW (inter-region/inter-cloud peering).
	AttachPeer
)

func (k AttachmentKind) String() string {
	switch k {
	case AttachVPC:
		return "vpc"
	case AttachSite:
		return "site"
	default:
		return "peer"
	}
}

// Attachment is one TGW attachment.
type Attachment struct {
	ID    string
	Kind  AttachmentKind
	RefID string // VPC ID, site ID, or peer TGW ID
}

// TGW is a transit gateway: a regional hub router interconnecting VPCs,
// sites, and peer TGWs through its own route table.
type TGW struct {
	ID     string
	Region string

	attachments map[string]Attachment
	rt          routing.Trie[string] // prefix -> attachment ID
}

// RouteCount returns the TGW table size.
func (t *TGW) RouteCount() int { return t.rt.Len() }

// Peering is a private connection between exactly two VPCs.
// Transitivity is deliberately absent, as in real clouds.
type Peering struct {
	ID   string
	AVPC string
	BVPC string
}

// Inspector is an in-path middlebox (firewall/DPI appliance) attached to a
// VPC's ingress. Inspect returns false with a reason to drop the packet.
type Inspector interface {
	Name() string
	Inspect(pkt vnet.Packet) (ok bool, reason string)
}

// publicBinding resolves a public IP to the instance behind it.
type publicBinding struct {
	vpcID  string
	instID string
}

// Fabric is the assembled baseline network: all VPCs, gateways, sites, and
// public address bindings of one tenant deployment (possibly spanning
// several providers — the fabric doesn't care, just like the tenant's
// spreadsheet doesn't).
type Fabric struct {
	vpcs     map[string]*vnet.VPC
	igws     map[string]*IGW
	eigws    map[string]*EgressIGW
	nats     map[string]*NATGateway
	vgws     map[string]*VGW
	tgws     map[string]*TGW
	peerings map[string]*Peering
	sites    map[string]*Site

	publicIPs  map[addr.IP]publicBinding
	publicPool *addr.HostPool
	inspectors map[string][]Inspector

	ledger *complexity.Ledger
}

// NewFabric returns an empty fabric charging the given ledger. Public
// addresses are handed out from the documentation range 203.0.113.0/24
// scaled up to /16 for big experiments.
func NewFabric(ledger *complexity.Ledger) *Fabric {
	return &Fabric{
		vpcs:       make(map[string]*vnet.VPC),
		igws:       make(map[string]*IGW),
		eigws:      make(map[string]*EgressIGW),
		nats:       make(map[string]*NATGateway),
		vgws:       make(map[string]*VGW),
		tgws:       make(map[string]*TGW),
		peerings:   make(map[string]*Peering),
		sites:      make(map[string]*Site),
		publicIPs:  make(map[addr.IP]publicBinding),
		publicPool: addr.NewHostPool(addr.MustParsePrefix("198.18.0.0/16"), 1),
		inspectors: make(map[string][]Inspector),
		ledger:     ledger,
	}
}

// Ledger returns the fabric's complexity ledger.
func (f *Fabric) Ledger() *complexity.Ledger { return f.ledger }

// AddVPC registers an existing VPC with the fabric.
func (f *Fabric) AddVPC(v *vnet.VPC) error {
	if _, ok := f.vpcs[v.ID]; ok {
		return fmt.Errorf("gateway: duplicate VPC %q", v.ID)
	}
	f.vpcs[v.ID] = v
	return nil
}

// VPC returns a registered VPC.
func (f *Fabric) VPC(id string) (*vnet.VPC, bool) {
	v, ok := f.vpcs[id]
	return v, ok
}

// CreateIGW provisions an internet gateway on a VPC.
func (f *Fabric) CreateIGW(id, vpcID string) (*IGW, error) {
	if _, ok := f.vpcs[vpcID]; !ok {
		return nil, fmt.Errorf("gateway: unknown VPC %q", vpcID)
	}
	if _, ok := f.igws[id]; ok {
		return nil, fmt.Errorf("gateway: duplicate IGW %q", id)
	}
	g := &IGW{ID: id, VPCID: vpcID}
	f.igws[id] = g
	f.ledger.Resource("internet-gateway")
	f.ledger.Param("internet-gateway", 1) // VPC attachment
	return g, nil
}

// CreateEgressIGW provisions an egress-only internet gateway.
func (f *Fabric) CreateEgressIGW(id, vpcID string) (*EgressIGW, error) {
	if _, ok := f.vpcs[vpcID]; !ok {
		return nil, fmt.Errorf("gateway: unknown VPC %q", vpcID)
	}
	g := &EgressIGW{ID: id, VPCID: vpcID}
	f.eigws[id] = g
	f.ledger.Resource("egress-only-igw")
	f.ledger.Param("egress-only-igw", 1)
	return g, nil
}

// CreateNAT provisions a NAT gateway in a subnet, allocating its public
// address.
func (f *Fabric) CreateNAT(id, vpcID, subnetID string) (*NATGateway, error) {
	v, ok := f.vpcs[vpcID]
	if !ok {
		return nil, fmt.Errorf("gateway: unknown VPC %q", vpcID)
	}
	if _, ok := v.Subnet(subnetID); !ok {
		return nil, fmt.Errorf("gateway: unknown subnet %q in %q", subnetID, vpcID)
	}
	pub, err := f.publicPool.Allocate()
	if err != nil {
		return nil, err
	}
	n := &NATGateway{ID: id, VPCID: vpcID, SubnetID: subnetID, PublicIP: pub,
		nextPort: 1024, active: make(map[int]bool)}
	f.nats[id] = n
	f.ledger.Resource("nat-gateway")
	f.ledger.Param("nat-gateway", 2) // subnet, elastic IP
	return n, nil
}

// AddSite registers an on-prem network.
func (f *Fabric) AddSite(id string, cidr addr.Prefix) (*Site, error) {
	if _, ok := f.sites[id]; ok {
		return nil, fmt.Errorf("gateway: duplicate site %q", id)
	}
	s := &Site{ID: id, CIDR: cidr, rt: &vnet.RouteTable{ID: id + "-rt"}}
	f.sites[id] = s
	return s, nil
}

// Site returns a registered site.
func (f *Fabric) Site(id string) (*Site, bool) {
	s, ok := f.sites[id]
	return s, ok
}

// CreateVGW provisions a VPN gateway pair connecting a VPC and a site
// (collapsing VGW + customer gateway + VPN connection into one box trio,
// charged accordingly).
func (f *Fabric) CreateVGW(id, vpcID, siteID string) (*VGW, error) {
	if _, ok := f.vpcs[vpcID]; !ok {
		return nil, fmt.Errorf("gateway: unknown VPC %q", vpcID)
	}
	if _, ok := f.sites[siteID]; !ok {
		return nil, fmt.Errorf("gateway: unknown site %q", siteID)
	}
	g := &VGW{ID: id, VPCID: vpcID, SiteID: siteID}
	f.vgws[id] = g
	f.ledger.Resource("vpn-gateway")
	f.ledger.Resource("customer-gateway")
	f.ledger.Resource("vpn-connection")
	f.ledger.Param("vpn-connection", 4) // tunnel options, PSK, routing type, inside CIDRs
	return g, nil
}

// CreateTGW provisions a regional transit gateway.
func (f *Fabric) CreateTGW(id, region string) (*TGW, error) {
	if _, ok := f.tgws[id]; ok {
		return nil, fmt.Errorf("gateway: duplicate TGW %q", id)
	}
	t := &TGW{ID: id, Region: region, attachments: make(map[string]Attachment)}
	f.tgws[id] = t
	f.ledger.Resource("transit-gateway")
	f.ledger.Param("transit-gateway", 3) // ASN, route-table mode, MTU
	return t, nil
}

// AttachToTGW creates an attachment on a TGW.
func (f *Fabric) AttachToTGW(tgwID, attachID string, kind AttachmentKind, refID string) error {
	t, ok := f.tgws[tgwID]
	if !ok {
		return fmt.Errorf("gateway: unknown TGW %q", tgwID)
	}
	switch kind {
	case AttachVPC:
		if _, ok := f.vpcs[refID]; !ok {
			return fmt.Errorf("gateway: TGW attachment to unknown VPC %q", refID)
		}
	case AttachSite:
		if _, ok := f.sites[refID]; !ok {
			return fmt.Errorf("gateway: TGW attachment to unknown site %q", refID)
		}
	case AttachPeer:
		if _, ok := f.tgws[refID]; !ok {
			return fmt.Errorf("gateway: TGW attachment to unknown peer TGW %q", refID)
		}
	}
	if _, ok := t.attachments[attachID]; ok {
		return fmt.Errorf("gateway: duplicate attachment %q on %q", attachID, tgwID)
	}
	t.attachments[attachID] = Attachment{ID: attachID, Kind: kind, RefID: refID}
	f.ledger.Resource("tgw-attachment")
	f.ledger.Param("tgw-attachment", 2) // resource ref, route-table association
	return nil
}

// TGWRoute installs a static route on a TGW's route table.
func (f *Fabric) TGWRoute(tgwID string, p addr.Prefix, attachID string) error {
	t, ok := f.tgws[tgwID]
	if !ok {
		return fmt.Errorf("gateway: unknown TGW %q", tgwID)
	}
	if _, ok := t.attachments[attachID]; !ok {
		return fmt.Errorf("gateway: unknown attachment %q on %q", attachID, tgwID)
	}
	t.rt.Insert(p, attachID)
	f.ledger.Step()
	f.ledger.Param("transit-gateway", 2) // prefix + attachment
	return nil
}

// PropagateTGWRoutes installs routes for the CIDRs of every attached VPC
// and site (route propagation, one step per learned route). Peer TGW
// attachments do not propagate — as in real clouds, those need static
// routes, which is exactly the cross-region complexity §2 bemoans.
func (f *Fabric) PropagateTGWRoutes(tgwID string) error {
	t, ok := f.tgws[tgwID]
	if !ok {
		return fmt.Errorf("gateway: unknown TGW %q", tgwID)
	}
	for _, a := range t.attachments {
		switch a.Kind {
		case AttachVPC:
			t.rt.Insert(f.vpcs[a.RefID].CIDR, a.ID)
			f.ledger.Step()
		case AttachSite:
			t.rt.Insert(f.sites[a.RefID].CIDR, a.ID)
			f.ledger.Step()
		}
	}
	return nil
}

// CreatePeering provisions a VPC peering connection.
func (f *Fabric) CreatePeering(id, aVPC, bVPC string) (*Peering, error) {
	va, ok := f.vpcs[aVPC]
	if !ok {
		return nil, fmt.Errorf("gateway: unknown VPC %q", aVPC)
	}
	vb, ok := f.vpcs[bVPC]
	if !ok {
		return nil, fmt.Errorf("gateway: unknown VPC %q", bVPC)
	}
	if va.CIDR.Overlaps(vb.CIDR) {
		return nil, fmt.Errorf("gateway: cannot peer overlapping VPCs %s and %s", va.CIDR, vb.CIDR)
	}
	p := &Peering{ID: id, AVPC: aVPC, BVPC: bVPC}
	f.peerings[id] = p
	f.ledger.Resource("vpc-peering")
	f.ledger.Param("vpc-peering", 2) // requester/accepter
	return p, nil
}

// AssignPublicIP allocates an internet-routable address for an instance
// (requires the VPC to have an IGW to be reachable, checked at delivery).
func (f *Fabric) AssignPublicIP(vpcID, instID string) (addr.IP, error) {
	v, ok := f.vpcs[vpcID]
	if !ok {
		return 0, fmt.Errorf("gateway: unknown VPC %q", vpcID)
	}
	inst, ok := v.Instance(instID)
	if !ok {
		return 0, fmt.Errorf("gateway: unknown instance %q", instID)
	}
	if inst.PublicIP != 0 {
		return 0, fmt.Errorf("gateway: instance %q already has a public IP", instID)
	}
	pub, err := f.publicPool.Allocate()
	if err != nil {
		return 0, err
	}
	inst.PublicIP = pub
	f.publicIPs[pub] = publicBinding{vpcID: vpcID, instID: instID}
	f.ledger.Resource("elastic-ip")
	f.ledger.Param("elastic-ip", 1)
	return pub, nil
}

// AttachInspector adds a middlebox to a VPC's ingress inspection chain.
func (f *Fabric) AttachInspector(vpcID string, insp Inspector) error {
	if _, ok := f.vpcs[vpcID]; !ok {
		return fmt.Errorf("gateway: unknown VPC %q", vpcID)
	}
	f.inspectors[vpcID] = append(f.inspectors[vpcID], insp)
	f.ledger.Step() // routing/steering configuration to put it in path
	return nil
}
