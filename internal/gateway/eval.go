package gateway

import (
	"fmt"

	"declnet/internal/vnet"
)

// SourceKind identifies where a packet enters the fabric.
type SourceKind int

const (
	// FromInstance originates at a tenant instance inside a VPC.
	FromInstance SourceKind = iota
	// FromInternet originates at an arbitrary public address.
	FromInternet
	// FromSite originates inside an on-prem site.
	FromSite
)

// Source locates a packet's origin. VPC private addresses may overlap
// across VPCs, so origin is explicit rather than inferred from Src.
type Source struct {
	Kind       SourceKind
	VPCID      string // FromInstance
	InstanceID string // FromInstance
	SiteID     string // FromSite
}

// Evaluate pushes the packet through the fabric from the given source and
// reports where it lands or which component drops it. Only the connection-
// initiator direction is evaluated; stateful components (SGs, NAT) admit
// replies implicitly and stateless ones (NACLs) are charged in both
// directions at the boundary they guard.
func (f *Fabric) Evaluate(src Source, pkt vnet.Packet) vnet.Verdict {
	switch src.Kind {
	case FromInstance:
		return f.fromInstance(src, pkt)
	case FromInternet:
		return f.fromInternet(pkt, nil)
	case FromSite:
		return f.fromSite(src.SiteID, pkt, nil)
	default:
		return vnet.Denied("fabric", "unknown source kind", nil)
	}
}

func (f *Fabric) fromInstance(src Source, pkt vnet.Packet) vnet.Verdict {
	v, ok := f.vpcs[src.VPCID]
	if !ok {
		return vnet.Denied("fabric", fmt.Sprintf("unknown VPC %q", src.VPCID), nil)
	}
	inst, ok := v.Instance(src.InstanceID)
	if !ok {
		return vnet.Denied("fabric", fmt.Sprintf("unknown instance %q", src.InstanceID), nil)
	}
	hops := []string{"instance:" + inst.ID}
	// Egress checks at the source (SG + NACL). Peer groups matter only for
	// intra-VPC SG-reference rules.
	if at, ok := v.CanEgress(inst, pkt, v.GroupsOf(pkt.Dst)); !ok {
		return vnet.Denied(at, "egress denied", hops)
	}
	tgt, ok := v.RouteFor(inst, pkt.Dst)
	if !ok {
		return vnet.Denied("no-route:"+src.VPCID, fmt.Sprintf("no route to %s", pkt.Dst), hops)
	}
	hops = append(hops, tgt.String())
	switch tgt.Kind {
	case vnet.TLocal:
		return f.deliverLocal(v, pkt, hops)
	case vnet.TPeering:
		return f.viaPeering(src.VPCID, tgt.ID, pkt, hops)
	case vnet.TTGW:
		return f.viaTGW(tgt.ID, pkt, hops, 0)
	case vnet.TIGW:
		return f.viaIGW(v, inst, tgt.ID, pkt, hops)
	case vnet.TEgressIGW:
		// Outbound through an egress-only gateway: source keeps a private
		// address but is let out; replies only (no inbound initiation).
		return f.fromInternet(pkt, hops)
	case vnet.TNAT:
		return f.viaNAT(tgt.ID, pkt, hops)
	case vnet.TVGW:
		return f.viaVGW(tgt.ID, pkt, hops)
	case vnet.TBlackhole:
		return vnet.Denied("blackhole", "blackhole route", hops)
	default:
		return vnet.Denied("fabric", "unroutable target", hops)
	}
}

// deliverLocal completes delivery to a private address inside v.
func (f *Fabric) deliverLocal(v *vnet.VPC, pkt vnet.Packet, hops []string) vnet.Verdict {
	dst, ok := v.InstanceByIP(pkt.Dst)
	if !ok {
		return vnet.Denied("no-host:"+v.ID, fmt.Sprintf("%s not present in %s", pkt.Dst, v.ID), hops)
	}
	if at, ok := v.CanIngress(dst, pkt, v.GroupsOf(pkt.Src)); !ok {
		return vnet.Denied(at, "ingress denied", hops)
	}
	hops = append(hops, "instance:"+dst.ID)
	return vnet.Deliver(hops)
}

// enterVPC runs the inspection chain and then local delivery — the shared
// tail of every path that terminates inside a VPC.
func (f *Fabric) enterVPC(vpcID string, pkt vnet.Packet, hops []string) vnet.Verdict {
	v := f.vpcs[vpcID]
	for _, insp := range f.inspectors[vpcID] {
		hops = append(hops, "inspect:"+insp.Name())
		if ok, reason := insp.Inspect(pkt); !ok {
			return vnet.Denied("firewall:"+insp.Name(), reason, hops)
		}
	}
	return f.deliverLocal(v, pkt, hops)
}

func (f *Fabric) viaPeering(fromVPC, pcxID string, pkt vnet.Packet, hops []string) vnet.Verdict {
	pcx, ok := f.peerings[pcxID]
	if !ok {
		return vnet.Denied("fabric", fmt.Sprintf("unknown peering %q", pcxID), hops)
	}
	var peerID string
	switch fromVPC {
	case pcx.AVPC:
		peerID = pcx.BVPC
	case pcx.BVPC:
		peerID = pcx.AVPC
	default:
		return vnet.Denied("pcx:"+pcxID, "peering does not include source VPC", hops)
	}
	peer := f.vpcs[peerID]
	// Non-transitive: delivery must land in the peer VPC itself.
	if !peer.CIDR.Contains(pkt.Dst) {
		return vnet.Denied("pcx:"+pcxID, "destination outside peer VPC (peering is non-transitive)", hops)
	}
	return f.enterVPC(peerID, pkt, hops)
}

// maxTGWHops bounds TGW-to-TGW forwarding; real deployments chain at most
// a few regional hubs (Fig. 1 has two).
const maxTGWHops = 4

func (f *Fabric) viaTGW(tgwID string, pkt vnet.Packet, hops []string, depth int) vnet.Verdict {
	if depth >= maxTGWHops {
		return vnet.Denied("tgw:"+tgwID, "TGW forwarding loop", hops)
	}
	t, ok := f.tgws[tgwID]
	if !ok {
		return vnet.Denied("fabric", fmt.Sprintf("unknown TGW %q", tgwID), hops)
	}
	attachID, ok := t.rt.Lookup(pkt.Dst)
	if !ok {
		return vnet.Denied("tgw:"+tgwID, fmt.Sprintf("no TGW route to %s", pkt.Dst), hops)
	}
	a := t.attachments[attachID]
	hops = append(hops, fmt.Sprintf("tgw:%s->%s:%s", tgwID, a.Kind, a.RefID))
	switch a.Kind {
	case AttachVPC:
		v := f.vpcs[a.RefID]
		if !v.CIDR.Contains(pkt.Dst) {
			return vnet.Denied("tgw:"+tgwID, "route points at VPC not owning destination", hops)
		}
		return f.enterVPC(a.RefID, pkt, hops)
	case AttachSite:
		return f.deliverSite(a.RefID, pkt, hops)
	case AttachPeer:
		return f.viaTGW(a.RefID, pkt, hops, depth+1)
	default:
		return vnet.Denied("tgw:"+tgwID, "unknown attachment kind", hops)
	}
}

func (f *Fabric) viaIGW(v *vnet.VPC, inst *vnet.Instance, igwID string, pkt vnet.Packet, hops []string) vnet.Verdict {
	g, ok := f.igws[igwID]
	if !ok || g.VPCID != v.ID {
		return vnet.Denied("fabric", fmt.Sprintf("IGW %q not attached to %q", igwID, v.ID), hops)
	}
	if inst.PublicIP == 0 {
		return vnet.Denied("igw:"+igwID, "instance has no public IP (needs NAT)", hops)
	}
	// Source NAT to the instance's public address.
	pkt.Src = inst.PublicIP
	return f.fromInternet(pkt, hops)
}

func (f *Fabric) viaNAT(natID string, pkt vnet.Packet, hops []string) vnet.Verdict {
	n, ok := f.nats[natID]
	if !ok {
		return vnet.Denied("fabric", fmt.Sprintf("unknown NAT %q", natID), hops)
	}
	port, err := n.AllocatePort()
	if err != nil {
		return vnet.Denied("nat:"+natID, err.Error(), hops)
	}
	pkt.Src = n.PublicIP
	pkt.SrcPort = port
	// The NAT's own subnet must route to an IGW; charge the hop and send.
	return f.fromInternet(pkt, hops)
}

func (f *Fabric) viaVGW(vgwID string, pkt vnet.Packet, hops []string) vnet.Verdict {
	g, ok := f.vgws[vgwID]
	if !ok {
		return vnet.Denied("fabric", fmt.Sprintf("unknown VGW %q", vgwID), hops)
	}
	return f.deliverSite(g.SiteID, pkt, hops)
}

func (f *Fabric) deliverSite(siteID string, pkt vnet.Packet, hops []string) vnet.Verdict {
	s, ok := f.sites[siteID]
	if !ok {
		return vnet.Denied("fabric", fmt.Sprintf("unknown site %q", siteID), hops)
	}
	if !s.CIDR.Contains(pkt.Dst) {
		return vnet.Denied("site:"+siteID, "destination outside site CIDR", hops)
	}
	hops = append(hops, "site:"+siteID)
	return vnet.Deliver(hops)
}

// fromInternet delivers a packet arriving from public address space.
func (f *Fabric) fromInternet(pkt vnet.Packet, hops []string) vnet.Verdict {
	hops = append(hops, "internet")
	b, ok := f.publicIPs[pkt.Dst]
	if !ok {
		return vnet.Denied("internet", fmt.Sprintf("%s is not a tenant public address", pkt.Dst), hops)
	}
	v := f.vpcs[b.vpcID]
	dst, ok := v.Instance(b.instID)
	if !ok {
		return vnet.Denied("internet", "stale public binding", hops)
	}
	// The VPC needs an IGW for inbound delivery.
	var igw *IGW
	for _, g := range f.igws {
		if g.VPCID == b.vpcID {
			igw = g
			break
		}
	}
	if igw == nil {
		return vnet.Denied("internet", fmt.Sprintf("VPC %q has no IGW", b.vpcID), hops)
	}
	hops = append(hops, "igw:"+igw.ID)
	// The destination's subnet must route back out the IGW (public
	// subnet); otherwise there is no return path and clouds drop inbound.
	sn, _ := v.Subnet(dst.SubnetID)
	if tgt, ok := sn.RT.Lookup(pkt.Src); !ok || tgt.Kind != vnet.TIGW {
		return vnet.Denied("igw:"+igw.ID, "destination subnet is not public (no IGW return route)", hops)
	}
	// DNAT public -> private, then normal VPC entry.
	pkt.Dst = dst.PrivateIP
	return f.enterVPC(b.vpcID, pkt, hops)
}

// fromSite evaluates a packet leaving an on-prem site.
func (f *Fabric) fromSite(siteID string, pkt vnet.Packet, hops []string) vnet.Verdict {
	s, ok := f.sites[siteID]
	if !ok {
		return vnet.Denied("fabric", fmt.Sprintf("unknown site %q", siteID), nil)
	}
	hops = append(hops, "site:"+siteID)
	tgt, ok := s.rt.Lookup(pkt.Dst)
	if !ok {
		return vnet.Denied("no-route:"+siteID, fmt.Sprintf("site has no route to %s", pkt.Dst), hops)
	}
	hops = append(hops, tgt.String())
	switch tgt.Kind {
	case vnet.TVGW:
		g, ok := f.vgws[tgt.ID]
		if !ok {
			return vnet.Denied("fabric", fmt.Sprintf("unknown VGW %q", tgt.ID), hops)
		}
		v := f.vpcs[g.VPCID]
		if !v.CIDR.Contains(pkt.Dst) {
			return vnet.Denied("vgw:"+g.ID, "destination outside VPN-attached VPC", hops)
		}
		return f.enterVPC(g.VPCID, pkt, hops)
	case vnet.TTGW:
		return f.viaTGW(tgt.ID, pkt, hops, 0)
	case vnet.TIGW:
		// Site egress to the public internet.
		return f.fromInternet(pkt, hops)
	default:
		return vnet.Denied("site:"+siteID, "unsupported site route target", hops)
	}
}
