package gateway

import (
	"strings"
	"testing"

	"declnet/internal/addr"
	"declnet/internal/complexity"
	"declnet/internal/vnet"
)

func pfx(s string) addr.Prefix { return addr.MustParsePrefix(s) }
func ipa(s string) addr.IP     { return addr.MustParseIP(s) }
func anywhere() addr.Prefix    { return pfx("0.0.0.0/0") }

// openSG allows everything in and out; tests tighten where relevant.
func openSG(id string) *vnet.SecurityGroup {
	return &vnet.SecurityGroup{
		ID:      id,
		Ingress: []vnet.SGRule{{Source: anywhere()}},
		Egress:  []vnet.SGRule{{Source: anywhere()}},
	}
}

// twoVPCFabric builds vpc-a (10.0/16) and vpc-b (10.1/16), each with one
// subnet and one instance with an open SG.
func twoVPCFabric(t *testing.T) (*Fabric, *vnet.Instance, *vnet.Instance) {
	t.Helper()
	var led complexity.Ledger
	f := NewFabric(&led)
	va := vnet.NewVPC("vpc-a", pfx("10.0.0.0/16"), &led)
	vb := vnet.NewVPC("vpc-b", pfx("10.1.0.0/16"), &led)
	for _, v := range []*vnet.VPC{va, vb} {
		if err := f.AddVPC(v); err != nil {
			t.Fatal(err)
		}
		if _, err := v.AddSubnet("sn", addr.NewPrefix(v.CIDR.Addr, 24), true); err != nil {
			t.Fatal(err)
		}
		if err := v.AddSecurityGroup(openSG("open")); err != nil {
			t.Fatal(err)
		}
	}
	ia, err := va.LaunchInstance("i-a", "sn", "open")
	if err != nil {
		t.Fatal(err)
	}
	ib, err := vb.LaunchInstance("i-b", "sn", "open")
	if err != nil {
		t.Fatal(err)
	}
	return f, ia, ib
}

func TestIntraVPCDelivery(t *testing.T) {
	f, ia, _ := twoVPCFabric(t)
	va, _ := f.VPC("vpc-a")
	ia2, _ := va.LaunchInstance("i-a2", "sn", "open")
	v := f.Evaluate(Source{Kind: FromInstance, VPCID: "vpc-a", InstanceID: "i-a"},
		vnet.Packet{Src: ia.PrivateIP, Dst: ia2.PrivateIP, Proto: vnet.TCP, DstPort: 80})
	if !v.Delivered {
		t.Fatalf("intra-VPC delivery failed: %v", v)
	}
}

func TestCrossVPCWithoutPeeringDenied(t *testing.T) {
	f, ia, ib := twoVPCFabric(t)
	v := f.Evaluate(Source{Kind: FromInstance, VPCID: "vpc-a", InstanceID: "i-a"},
		vnet.Packet{Src: ia.PrivateIP, Dst: ib.PrivateIP, Proto: vnet.TCP, DstPort: 80})
	if v.Delivered {
		t.Fatalf("cross-VPC delivered without peering: %v", v)
	}
	if !strings.HasPrefix(v.DeniedAt, "no-route") {
		t.Fatalf("denied at %q, want no-route", v.DeniedAt)
	}
}

func TestPeeringDelivery(t *testing.T) {
	f, ia, ib := twoVPCFabric(t)
	if _, err := f.CreatePeering("pcx-1", "vpc-a", "vpc-b"); err != nil {
		t.Fatal(err)
	}
	va, _ := f.VPC("vpc-a")
	// Route both ways (only a->b needed for initiator, but realistic).
	if err := va.AddRoute("sn", pfx("10.1.0.0/16"), vnet.Target{Kind: vnet.TPeering, ID: "pcx-1"}); err != nil {
		t.Fatal(err)
	}
	v := f.Evaluate(Source{Kind: FromInstance, VPCID: "vpc-a", InstanceID: "i-a"},
		vnet.Packet{Src: ia.PrivateIP, Dst: ib.PrivateIP, Proto: vnet.TCP, DstPort: 80})
	if !v.Delivered {
		t.Fatalf("peered delivery failed: %v", v)
	}
	_ = ib
}

func TestPeeringNonTransitive(t *testing.T) {
	// a peered to b; c's CIDR routed via the a-b peering must be refused.
	f, ia, _ := twoVPCFabric(t)
	var led complexity.Ledger
	vc := vnet.NewVPC("vpc-c", pfx("10.2.0.0/16"), &led)
	f.AddVPC(vc)
	vc.AddSubnet("sn", pfx("10.2.0.0/24"), false)
	vc.AddSecurityGroup(openSG("open"))
	ic, _ := vc.LaunchInstance("i-c", "sn", "open")
	f.CreatePeering("pcx-1", "vpc-a", "vpc-b")
	va, _ := f.VPC("vpc-a")
	// Misconfigured transitive route: c via the a-b peering.
	va.AddRoute("sn", pfx("10.2.0.0/16"), vnet.Target{Kind: vnet.TPeering, ID: "pcx-1"})
	v := f.Evaluate(Source{Kind: FromInstance, VPCID: "vpc-a", InstanceID: "i-a"},
		vnet.Packet{Src: ia.PrivateIP, Dst: ic.PrivateIP, Proto: vnet.TCP, DstPort: 80})
	if v.Delivered {
		t.Fatal("peering behaved transitively")
	}
	if v.DeniedAt != "pcx:pcx-1" {
		t.Fatalf("denied at %q, want pcx:pcx-1", v.DeniedAt)
	}
}

func TestPeeringOverlapRefused(t *testing.T) {
	var led complexity.Ledger
	f := NewFabric(&led)
	va := vnet.NewVPC("vpc-a", pfx("10.0.0.0/16"), &led)
	vb := vnet.NewVPC("vpc-b", pfx("10.0.0.0/16"), &led)
	f.AddVPC(va)
	f.AddVPC(vb)
	if _, err := f.CreatePeering("pcx", "vpc-a", "vpc-b"); err == nil {
		t.Fatal("peering of overlapping VPCs accepted")
	}
}

func TestIGWPublicDelivery(t *testing.T) {
	f, ia, ib := twoVPCFabric(t)
	for _, vpc := range []string{"vpc-a", "vpc-b"} {
		if _, err := f.CreateIGW("igw-"+vpc, vpc); err != nil {
			t.Fatal(err)
		}
		v, _ := f.VPC(vpc)
		if err := v.AddRoute("sn", anywhere(), vnet.Target{Kind: vnet.TIGW, ID: "igw-" + vpc}); err != nil {
			t.Fatal(err)
		}
	}
	pubA, err := f.AssignPublicIP("vpc-a", "i-a")
	if err != nil {
		t.Fatal(err)
	}
	pubB, err := f.AssignPublicIP("vpc-b", "i-b")
	if err != nil {
		t.Fatal(err)
	}
	// a -> b over public addressing.
	v := f.Evaluate(Source{Kind: FromInstance, VPCID: "vpc-a", InstanceID: "i-a"},
		vnet.Packet{Src: ia.PrivateIP, Dst: pubB, Proto: vnet.TCP, DstPort: 443})
	if !v.Delivered {
		t.Fatalf("public-path delivery failed: %v", v)
	}
	sawInternet := false
	for _, h := range v.Hops {
		if h == "internet" {
			sawInternet = true
		}
	}
	if !sawInternet {
		t.Fatalf("public path did not cross the internet: %v", v.Hops)
	}
	_ = pubA
	_ = ib
}

func TestIGWWithoutPublicIPDenied(t *testing.T) {
	f, ia, _ := twoVPCFabric(t)
	f.CreateIGW("igw-a", "vpc-a")
	va, _ := f.VPC("vpc-a")
	va.AddRoute("sn", anywhere(), vnet.Target{Kind: vnet.TIGW, ID: "igw-a"})
	v := f.Evaluate(Source{Kind: FromInstance, VPCID: "vpc-a", InstanceID: "i-a"},
		vnet.Packet{Src: ia.PrivateIP, Dst: ipa("93.184.216.34"), Proto: vnet.TCP, DstPort: 443})
	if v.Delivered || !strings.HasPrefix(v.DeniedAt, "igw:") {
		t.Fatalf("IGW egress without public IP: %v", v)
	}
}

func TestInternetToPrivateSubnetDenied(t *testing.T) {
	// Destination has a public IP but its subnet lacks an IGW route
	// (private subnet): inbound must be dropped for want of return path.
	f, _, _ := twoVPCFabric(t)
	f.CreateIGW("igw-a", "vpc-a")
	pub, _ := f.AssignPublicIP("vpc-a", "i-a")
	v := f.Evaluate(Source{Kind: FromInternet},
		vnet.Packet{Src: ipa("203.0.113.7"), Dst: pub, Proto: vnet.TCP, DstPort: 443})
	if v.Delivered {
		t.Fatalf("inbound to private subnet delivered: %v", v)
	}
}

func TestInternetDelivery(t *testing.T) {
	f, _, _ := twoVPCFabric(t)
	f.CreateIGW("igw-a", "vpc-a")
	va, _ := f.VPC("vpc-a")
	va.AddRoute("sn", anywhere(), vnet.Target{Kind: vnet.TIGW, ID: "igw-a"})
	pub, _ := f.AssignPublicIP("vpc-a", "i-a")
	v := f.Evaluate(Source{Kind: FromInternet},
		vnet.Packet{Src: ipa("203.0.113.7"), Dst: pub, Proto: vnet.TCP, DstPort: 443})
	if !v.Delivered {
		t.Fatalf("inbound public delivery failed: %v", v)
	}
	// Unknown public destination.
	v = f.Evaluate(Source{Kind: FromInternet},
		vnet.Packet{Src: ipa("203.0.113.7"), Dst: ipa("198.18.99.99"), Proto: vnet.TCP, DstPort: 443})
	if v.Delivered {
		t.Fatal("delivery to unbound public address")
	}
}

func TestNATEgress(t *testing.T) {
	f, ia, _ := twoVPCFabric(t)
	f.CreateIGW("igw-b", "vpc-b")
	vb, _ := f.VPC("vpc-b")
	vb.AddRoute("sn", anywhere(), vnet.Target{Kind: vnet.TIGW, ID: "igw-b"})
	pubB, _ := f.AssignPublicIP("vpc-b", "i-b")

	nat, err := f.CreateNAT("nat-a", "vpc-a", "sn")
	if err != nil {
		t.Fatal(err)
	}
	va, _ := f.VPC("vpc-a")
	va.AddRoute("sn", anywhere(), vnet.Target{Kind: vnet.TNAT, ID: "nat-a"})
	v := f.Evaluate(Source{Kind: FromInstance, VPCID: "vpc-a", InstanceID: "i-a"},
		vnet.Packet{Src: ia.PrivateIP, Dst: pubB, Proto: vnet.TCP, SrcPort: 5555, DstPort: 443})
	if !v.Delivered {
		t.Fatalf("NAT egress failed: %v", v)
	}
	if nat.ActivePorts() != 1 {
		t.Fatalf("NAT active ports = %d, want 1", nat.ActivePorts())
	}
}

func TestNATPortLifecycle(t *testing.T) {
	var led complexity.Ledger
	f := NewFabric(&led)
	v := vnet.NewVPC("v", pfx("10.0.0.0/16"), &led)
	f.AddVPC(v)
	v.AddSubnet("sn", pfx("10.0.0.0/24"), true)
	nat, _ := f.CreateNAT("n", "v", "sn")
	p1, err := nat.AllocatePort()
	if err != nil || p1 != 1024 {
		t.Fatalf("first port = %d,%v", p1, err)
	}
	p2, _ := nat.AllocatePort()
	if p2 == p1 {
		t.Fatal("duplicate port allocated")
	}
	if err := nat.ReleasePort(p1); err != nil {
		t.Fatal(err)
	}
	if err := nat.ReleasePort(p1); err == nil {
		t.Fatal("double release succeeded")
	}
	p3, _ := nat.AllocatePort()
	if p3 != p1 {
		t.Fatalf("released port not reused: %d", p3)
	}
}

func TestVGWSiteDelivery(t *testing.T) {
	f, ia, _ := twoVPCFabric(t)
	site, err := f.AddSite("hq", pfx("192.168.0.0/16"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.CreateVGW("vgw-1", "vpc-a", "hq"); err != nil {
		t.Fatal(err)
	}
	va, _ := f.VPC("vpc-a")
	va.AddRoute("sn", pfx("192.168.0.0/16"), vnet.Target{Kind: vnet.TVGW, ID: "vgw-1"})
	v := f.Evaluate(Source{Kind: FromInstance, VPCID: "vpc-a", InstanceID: "i-a"},
		vnet.Packet{Src: ia.PrivateIP, Dst: ipa("192.168.1.10"), Proto: vnet.TCP, DstPort: 5432})
	if !v.Delivered {
		t.Fatalf("VPN delivery to site failed: %v", v)
	}
	// Reverse: site -> VPC over the VGW.
	site.AddRoute(pfx("10.0.0.0/16"), vnet.Target{Kind: vnet.TVGW, ID: "vgw-1"})
	v = f.Evaluate(Source{Kind: FromSite, SiteID: "hq"},
		vnet.Packet{Src: ipa("192.168.1.10"), Dst: ia.PrivateIP, Proto: vnet.TCP, DstPort: 22})
	if !v.Delivered {
		t.Fatalf("site->VPC delivery failed: %v", v)
	}
}

func TestTGWHubAndSpoke(t *testing.T) {
	f, ia, ib := twoVPCFabric(t)
	if _, err := f.CreateTGW("tgw-1", "east"); err != nil {
		t.Fatal(err)
	}
	if err := f.AttachToTGW("tgw-1", "att-a", AttachVPC, "vpc-a"); err != nil {
		t.Fatal(err)
	}
	if err := f.AttachToTGW("tgw-1", "att-b", AttachVPC, "vpc-b"); err != nil {
		t.Fatal(err)
	}
	if err := f.PropagateTGWRoutes("tgw-1"); err != nil {
		t.Fatal(err)
	}
	va, _ := f.VPC("vpc-a")
	va.AddRoute("sn", pfx("10.1.0.0/16"), vnet.Target{Kind: vnet.TTGW, ID: "tgw-1"})
	v := f.Evaluate(Source{Kind: FromInstance, VPCID: "vpc-a", InstanceID: "i-a"},
		vnet.Packet{Src: ia.PrivateIP, Dst: ib.PrivateIP, Proto: vnet.TCP, DstPort: 80})
	if !v.Delivered {
		t.Fatalf("TGW hub delivery failed: %v", v)
	}
	tg, _ := f.tgws["tgw-1"]
	if tg.RouteCount() != 2 {
		t.Fatalf("TGW routes = %d, want 2", tg.RouteCount())
	}
}

func TestTGWPeeringAcrossRegions(t *testing.T) {
	// vpc-a -- tgw-east == tgw-west -- vpc-b, with static inter-TGW routes.
	f, ia, ib := twoVPCFabric(t)
	f.CreateTGW("tgw-e", "east")
	f.CreateTGW("tgw-w", "west")
	f.AttachToTGW("tgw-e", "att-a", AttachVPC, "vpc-a")
	f.AttachToTGW("tgw-w", "att-b", AttachVPC, "vpc-b")
	f.AttachToTGW("tgw-e", "att-peer-w", AttachPeer, "tgw-w")
	f.AttachToTGW("tgw-w", "att-peer-e", AttachPeer, "tgw-e")
	f.PropagateTGWRoutes("tgw-e")
	f.PropagateTGWRoutes("tgw-w")
	// Static routes across the peering (propagation doesn't cross TGWs).
	if err := f.TGWRoute("tgw-e", pfx("10.1.0.0/16"), "att-peer-w"); err != nil {
		t.Fatal(err)
	}
	if err := f.TGWRoute("tgw-w", pfx("10.0.0.0/16"), "att-peer-e"); err != nil {
		t.Fatal(err)
	}
	va, _ := f.VPC("vpc-a")
	va.AddRoute("sn", pfx("10.1.0.0/16"), vnet.Target{Kind: vnet.TTGW, ID: "tgw-e"})
	v := f.Evaluate(Source{Kind: FromInstance, VPCID: "vpc-a", InstanceID: "i-a"},
		vnet.Packet{Src: ia.PrivateIP, Dst: ib.PrivateIP, Proto: vnet.TCP, DstPort: 80})
	if !v.Delivered {
		t.Fatalf("cross-region TGW delivery failed: %v", v)
	}
	_ = ib
}

func TestTGWLoopGuard(t *testing.T) {
	f, ia, _ := twoVPCFabric(t)
	f.CreateTGW("tgw-1", "east")
	f.CreateTGW("tgw-2", "west")
	f.AttachToTGW("tgw-1", "p2", AttachPeer, "tgw-2")
	f.AttachToTGW("tgw-2", "p1", AttachPeer, "tgw-1")
	// Misconfigured: each TGW routes the prefix at the other.
	f.TGWRoute("tgw-1", pfx("10.9.0.0/16"), "p2")
	f.TGWRoute("tgw-2", pfx("10.9.0.0/16"), "p1")
	va, _ := f.VPC("vpc-a")
	va.AddRoute("sn", pfx("10.9.0.0/16"), vnet.Target{Kind: vnet.TTGW, ID: "tgw-1"})
	v := f.Evaluate(Source{Kind: FromInstance, VPCID: "vpc-a", InstanceID: "i-a"},
		vnet.Packet{Src: ia.PrivateIP, Dst: ipa("10.9.1.1"), Proto: vnet.TCP, DstPort: 80})
	if v.Delivered {
		t.Fatal("routing loop delivered a packet")
	}
	if !strings.Contains(v.Reason, "loop") {
		t.Fatalf("reason = %q, want loop detection", v.Reason)
	}
}

func TestSGBlocksAtDestination(t *testing.T) {
	f, ia, _ := twoVPCFabric(t)
	va, _ := f.VPC("vpc-a")
	va.AddSecurityGroup(&vnet.SecurityGroup{
		ID:      "db",
		Ingress: []vnet.SGRule{{Proto: vnet.TCP, PortFrom: 5432, PortTo: 5432, Source: pfx("10.0.0.0/16")}},
	})
	db, _ := va.LaunchInstance("i-db", "sn", "db")
	ok := f.Evaluate(Source{Kind: FromInstance, VPCID: "vpc-a", InstanceID: "i-a"},
		vnet.Packet{Src: ia.PrivateIP, Dst: db.PrivateIP, Proto: vnet.TCP, DstPort: 5432})
	if !ok.Delivered {
		t.Fatalf("allowed port denied: %v", ok)
	}
	bad := f.Evaluate(Source{Kind: FromInstance, VPCID: "vpc-a", InstanceID: "i-a"},
		vnet.Packet{Src: ia.PrivateIP, Dst: db.PrivateIP, Proto: vnet.TCP, DstPort: 22})
	if bad.Delivered {
		t.Fatal("SG let through a non-allowed port")
	}
	if !strings.HasPrefix(bad.DeniedAt, "sg-ingress") {
		t.Fatalf("denied at %q", bad.DeniedAt)
	}
}

type denyPayload struct{ word string }

func (d denyPayload) Name() string { return "dpi" }
func (d denyPayload) Inspect(pkt vnet.Packet) (bool, string) {
	if strings.Contains(pkt.Payload, d.word) {
		return false, "signature match: " + d.word
	}
	return true, ""
}

func TestInspectorChain(t *testing.T) {
	f, ia, ib := twoVPCFabric(t)
	f.CreatePeering("pcx-1", "vpc-a", "vpc-b")
	va, _ := f.VPC("vpc-a")
	va.AddRoute("sn", pfx("10.1.0.0/16"), vnet.Target{Kind: vnet.TPeering, ID: "pcx-1"})
	if err := f.AttachInspector("vpc-b", denyPayload{word: "exploit"}); err != nil {
		t.Fatal(err)
	}
	bad := f.Evaluate(Source{Kind: FromInstance, VPCID: "vpc-a", InstanceID: "i-a"},
		vnet.Packet{Src: ia.PrivateIP, Dst: ib.PrivateIP, Proto: vnet.TCP, DstPort: 80, Payload: "run exploit now"})
	if bad.Delivered {
		t.Fatal("DPI inspector did not block payload")
	}
	good := f.Evaluate(Source{Kind: FromInstance, VPCID: "vpc-a", InstanceID: "i-a"},
		vnet.Packet{Src: ia.PrivateIP, Dst: ib.PrivateIP, Proto: vnet.TCP, DstPort: 80, Payload: "hello"})
	if !good.Delivered {
		t.Fatalf("clean payload blocked: %v", good)
	}
}

func TestLedgerChargesGateways(t *testing.T) {
	f, _, _ := twoVPCFabric(t)
	f.CreateIGW("igw", "vpc-a")
	f.CreateNAT("nat", "vpc-a", "sn")
	f.AddSite("hq", pfx("192.168.0.0/16"))
	f.CreateVGW("vgw", "vpc-a", "hq")
	f.CreateTGW("tgw", "east")
	f.AttachToTGW("tgw", "att", AttachVPC, "vpc-a")
	f.CreatePeering("pcx", "vpc-a", "vpc-b")
	led := f.Ledger()
	for _, kind := range []string{"internet-gateway", "nat-gateway", "vpn-gateway",
		"vpn-connection", "transit-gateway", "tgw-attachment", "vpc-peering"} {
		if led.BoxesOf(kind) != 1 {
			t.Errorf("BoxesOf(%s) = %d, want 1", kind, led.BoxesOf(kind))
		}
	}
}

func TestEvaluateUnknowns(t *testing.T) {
	f, _, _ := twoVPCFabric(t)
	v := f.Evaluate(Source{Kind: FromInstance, VPCID: "nope", InstanceID: "i"}, vnet.Packet{})
	if v.Delivered {
		t.Fatal("unknown VPC delivered")
	}
	v = f.Evaluate(Source{Kind: FromInstance, VPCID: "vpc-a", InstanceID: "nope"}, vnet.Packet{})
	if v.Delivered {
		t.Fatal("unknown instance delivered")
	}
	v = f.Evaluate(Source{Kind: FromSite, SiteID: "nope"}, vnet.Packet{})
	if v.Delivered {
		t.Fatal("unknown site delivered")
	}
}
