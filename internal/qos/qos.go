// Package qos implements the QoS half of the paper's proposal (§4):
// per-VM egress caps (token buckets), per-tenant regional egress
// bandwidth guarantees enforced by a distributed rate limiter in the
// spirit of the paper's citations (BwE/EyeQ/HUG), and hot/cold-potato
// exit-path selection for traffic leaving the cloud.
//
// §6(i) asks "can egress bandwidth quotas be scalably enforced?" — the
// DistributedLimiter answers it by periodically redistributing a regional
// quota across enforcement points proportionally to measured demand, and
// the E5 experiment reports its enforcement error as flows churn.
package qos

import (
	"fmt"
	"math"

	"declnet/internal/sim"
	"declnet/internal/topo"
)

// TokenBucket is a classic policer: rate tokens/s, burst capacity, refill
// on demand from a virtual clock.
type TokenBucket struct {
	Rate  float64 // tokens (bits) per second
	Burst float64 // bucket depth in tokens

	tokens float64
	last   sim.Time
	primed bool
}

// NewTokenBucket returns a full bucket.
func NewTokenBucket(rate, burst float64) *TokenBucket {
	return &TokenBucket{Rate: rate, Burst: burst, tokens: burst}
}

func (b *TokenBucket) refill(now sim.Time) {
	if !b.primed {
		b.last = now
		b.primed = true
		return
	}
	dt := (now - b.last).Seconds()
	if dt > 0 {
		b.tokens += b.Rate * dt
		if b.tokens > b.Burst {
			b.tokens = b.Burst
		}
		b.last = now
	}
}

// Take consumes n tokens if available, reporting success.
func (b *TokenBucket) Take(now sim.Time, n float64) bool {
	b.refill(now)
	if n > b.tokens {
		return false
	}
	b.tokens -= n
	return true
}

// Available reports the current token count.
func (b *TokenBucket) Available(now sim.Time) float64 {
	b.refill(now)
	return b.tokens
}

// RateSetter is what a limiter needs from a flow: the ability to cap its
// rate. netsim.Network + *netsim.Flow satisfy it through the adapter in
// package core; tests use fakes.
type RateSetter interface {
	// SetCap sets the enforcement cap in bits/s (0 = uncapped).
	SetCap(bps float64)
	// Demand returns the flow's current offered load in bits/s (what it
	// would send if uncapped).
	Demand() float64
}

// Enforcer is one enforcement point (host or edge) of a distributed
// limiter, shaping some set of flows.
type Enforcer struct {
	ID string
	// flows maps each shaped flow to its current grant in bits/s. A flow
	// attached between control rounds has only the probing minimum until
	// the controller runs again — the undershoot E5 measures.
	flows map[RateSetter]float64
	alloc float64 // current allocation from the controller, bits/s
	// down marks an enforcement point the controller cannot reach (its
	// host or region failed). Down enforcers are excluded from quota
	// redistribution so survivors re-share the regional guarantee.
	down bool
}

// NewEnforcer returns an empty enforcement point.
func NewEnforcer(id string) *Enforcer {
	return &Enforcer{ID: id, flows: make(map[RateSetter]float64)}
}

// SetUp marks the enforcement point reachable or partitioned. Going down
// zeroes its allocation immediately (its flows are stalled anyway); going
// up leaves it at the probing minimum until the next control round.
func (e *Enforcer) SetUp(up bool) {
	if e.down != !up {
		e.down = !up
		if e.down {
			e.alloc = 0
		}
	}
}

// Up reports whether the enforcement point is reachable.
func (e *Enforcer) Up() bool { return !e.down }

// Attach adds a flow to be shaped. Until the next control round it may
// send only the probing minimum.
func (e *Enforcer) Attach(f RateSetter) {
	e.flows[f] = minGrant
	f.SetCap(minGrant)
}

// Detach removes a flow, stranding its grant until the next round.
func (e *Enforcer) Detach(f RateSetter) {
	delete(e.flows, f)
	f.SetCap(0)
}

// ActualRate returns what the attached flows are really sending:
// min(grant, demand) summed over live flows. Compare with the
// controller's intended allocation for enforcement error.
func (e *Enforcer) ActualRate() float64 {
	var sum float64
	for f, grant := range e.flows {
		sum += math.Min(grant, f.Demand())
	}
	return sum
}

// Demand returns the enforcement point's total offered load.
func (e *Enforcer) Demand() float64 {
	var d float64
	for f := range e.flows {
		d += f.Demand()
	}
	return d
}

// Flows returns the number of attached flows.
func (e *Enforcer) Flows() int { return len(e.flows) }

// Allocation returns the controller's current grant.
func (e *Enforcer) Allocation() float64 { return e.alloc }

// apply divides the allocation across local flows max-min fairly
// (waterfill over per-flow demand).
func (e *Enforcer) apply() {
	n := len(e.flows)
	if n == 0 {
		return
	}
	remaining := e.alloc
	pend := make([]fd, 0, n)
	for f := range e.flows {
		pend = append(pend, fd{f, f.Demand()})
	}
	// Deterministic order not required for correctness (shares are fully
	// determined by demands), but sort keeps runs reproducible.
	sortByDemand(pend)
	for i, p := range pend {
		left := len(pend) - i
		share := remaining / float64(left)
		grant := math.Max(math.Min(share, p.d), minGrant)
		// Steady-state rounds recompute the same grants; skipping the
		// redundant SetCap keeps the data plane's fair-share solver from
		// resharing on no-op cap churn every control period.
		if e.flows[p.f] != grant {
			e.flows[p.f] = grant
			p.f.SetCap(grant)
		}
		remaining -= grant
	}
}

// minGrant keeps a token of bandwidth on every flow so demand estimation
// never starves completely (EyeQ-style probing headroom).
const minGrant = 1e3 // 1 kbps

// fd pairs a flow with its sampled demand during a waterfill round.
type fd struct {
	f RateSetter
	d float64
}

func sortByDemand(s []fd) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j].d < s[j-1].d; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// DistributedLimiter enforces one regional quota across many enforcement
// points. A central controller wakes every period, reads each enforcer's
// demand, and redistributes the quota proportionally to demand with a
// max-min waterfill; each enforcer then subdivides its grant locally.
// This is the BwE-lite control loop the paper's QoS section leans on.
type DistributedLimiter struct {
	Quota  float64 // bits/s for the whole region
	Period sim.Time

	eng       *sim.Engine
	enforcers []*Enforcer
	ticker    *sim.Ticker
	// Rounds counts controller iterations; a cost metric for E5.
	Rounds uint64
}

// NewDistributedLimiter returns a limiter over the given enforcement
// points, redistributing every period.
func NewDistributedLimiter(eng *sim.Engine, quota float64, period sim.Time, enforcers ...*Enforcer) *DistributedLimiter {
	if period <= 0 {
		panic("qos: non-positive redistribution period")
	}
	d := &DistributedLimiter{Quota: quota, Period: period, eng: eng, enforcers: enforcers}
	// A daemon ticker: the control loop must not keep a drained
	// simulation alive on its own.
	d.ticker = eng.EveryDaemon(period, d.Redistribute)
	return d
}

// Stop halts the control loop.
func (d *DistributedLimiter) Stop() { d.ticker.Stop() }

// AddEnforcer registers another enforcement point with the controller
// (endpoints appear as tenants launch instances, so the set is dynamic).
func (d *DistributedLimiter) AddEnforcer(e *Enforcer) {
	d.enforcers = append(d.enforcers, e)
}

// SetQuota changes the regional guarantee (the set_qos verb) and takes
// effect at the next redistribution round.
func (d *DistributedLimiter) SetQuota(quota float64) { d.Quota = quota }

// Redistribute runs one controller round immediately. Partitioned
// (down) enforcers are excluded: their demand does not count and their
// allocation stays zero, so the surviving points re-share the quota —
// graceful degradation under region failure.
func (d *DistributedLimiter) Redistribute() {
	d.Rounds++
	demands := make([]float64, len(d.enforcers))
	var total float64
	for i, e := range d.enforcers {
		if e.down {
			continue
		}
		demands[i] = e.Demand()
		total += demands[i]
	}
	if total <= d.Quota {
		// Everyone gets their demand; unsated quota stays in reserve.
		for i, e := range d.enforcers {
			if e.down {
				continue
			}
			e.alloc = demands[i]
			e.apply()
		}
		return
	}
	// Max-min waterfill across enforcers by demand.
	remaining := d.Quota
	idx := make([]int, 0, len(d.enforcers))
	for i, e := range d.enforcers {
		if !e.down {
			idx = append(idx, i)
		}
	}
	// Insertion sort by demand ascending for the waterfill.
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && demands[idx[j]] < demands[idx[j-1]]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	for k, i := range idx {
		left := len(idx) - k
		share := remaining / float64(left)
		grant := math.Min(share, demands[i])
		d.enforcers[i].alloc = grant
		d.enforcers[i].apply()
		remaining -= grant
	}
}

// AggregateRate returns the sum of enforcer allocations (the controller's
// intent).
func (d *DistributedLimiter) AggregateRate() float64 {
	var sum float64
	for _, e := range d.enforcers {
		sum += e.alloc
	}
	return sum
}

// AggregateActual returns what the live flows are really sending:
// min(grant, demand) summed across every enforcement point. Between
// control rounds this diverges from the intent as flows come and go —
// stranded grants undershoot, and a just-departed-then-arrived pattern
// starves newcomers.
func (d *DistributedLimiter) AggregateActual() float64 {
	var sum float64
	for _, e := range d.enforcers {
		if e.down {
			continue
		}
		sum += e.ActualRate()
	}
	return sum
}

// EnforcementError returns |actual - min(quota, demand)| / quota: the
// relative deviation of real transmission from the ideal instantaneous
// limiter. This is the figure of merit for §6(i)'s "can egress bandwidth
// quotas be scalably enforced?".
func (d *DistributedLimiter) EnforcementError() float64 {
	var demand float64
	for _, e := range d.enforcers {
		if e.down {
			continue
		}
		demand += e.Demand()
	}
	ideal := math.Min(d.Quota, demand)
	if ideal == 0 {
		return 0
	}
	return math.Abs(d.AggregateActual()-ideal) / d.Quota
}

// PotatoPolicy selects how traffic exits the cloud (§4 QoS): hot potato
// leaves the provider WAN as early as possible; cold potato rides the
// backbone as far as possible; Dedicated uses only provisioned private
// circuits and fails when none exist.
type PotatoPolicy int

const (
	// HotPotato exits to the public internet at the nearest border.
	HotPotato PotatoPolicy = iota
	// ColdPotato stays on the provider backbone until the latest exit.
	ColdPotato
	// Dedicated uses only private circuits end to end.
	Dedicated
)

var potatoNames = map[PotatoPolicy]string{
	HotPotato: "hot", ColdPotato: "cold", Dedicated: "dedicated",
}

func (p PotatoPolicy) String() string { return potatoNames[p] }

// PathFor computes the route src->dst under the policy.
func PathFor(g *topo.Graph, policy PotatoPolicy, src, dst topo.NodeID) (topo.Path, error) {
	// The declarative model deliberately has no tenant-provisioned
	// dedicated circuits (§4: "We do not support the dedicated links
	// mentioned in §2 in our model"), so hot and cold potato both forbid
	// them; the Dedicated policy exists as the baseline comparator.
	switch policy {
	case HotPotato:
		// Penalize backbone links so the path exits to transit early.
		return g.ShortestPath(src, dst, topo.PathOpts{
			Forbid: map[topo.LinkKind]bool{topo.Dedicated: true},
			Avoid:  map[topo.LinkKind]bool{topo.Backbone: true},
		})
	case ColdPotato:
		// Penalize transit so the path rides the backbone to the latest
		// exit.
		return g.ShortestPath(src, dst, topo.PathOpts{
			Forbid: map[topo.LinkKind]bool{topo.Dedicated: true},
			Avoid:  map[topo.LinkKind]bool{topo.Transit: true},
		})
	case Dedicated:
		p, err := g.ShortestPath(src, dst, topo.PathOpts{
			Forbid: map[topo.LinkKind]bool{topo.Transit: true},
		})
		if err != nil {
			return nil, fmt.Errorf("qos: no dedicated path %s->%s: %w", src, dst, err)
		}
		return p, nil
	default:
		return nil, fmt.Errorf("qos: unknown potato policy %d", policy)
	}
}
