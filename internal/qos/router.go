// Router: an epoch-keyed cache in front of PathFor, the provider's
// connect-time route computation. The paper's pitch is that the provider
// absorbs the datapath work tenants used to do by hand — which makes path
// selection a per-connect cost, and repeat (policy, src, dst) queries the
// common case. The cache is keyed on topo.Graph.Epoch(): any topology
// mutation (including fault injection) bumps the epoch, and the whole
// cache is invalidated on the next query, so a stale route can never be
// served across a fault or heal.
//
// Misses (including errors) are cached too — negative caching is safe
// because the only ways an unreachable or unknown pair can become
// routable are AddNode/AddLink/SetLinkUp/SetPairUp, all of which bump the
// epoch.
package qos

import (
	"sync"
	"sync/atomic"

	"declnet/internal/topo"
)

// pathKey identifies one cached route query.
type pathKey struct {
	policy   PotatoPolicy
	src, dst topo.NodeID
}

// pathVal is one cached outcome: the path, or the error the search
// produced (negative cache entry).
type pathVal struct {
	path topo.Path
	err  error
}

// Router serves policy path queries through an epoch-keyed cache over one
// graph. Concurrent readers are safe; the graph itself must not be
// mutated while a query is in flight (the API layer's write lock
// guarantees that).
type Router struct {
	g *topo.Graph

	mu    sync.RWMutex
	epoch uint64 // graph epoch the cache contents were computed at
	cache map[pathKey]pathVal

	hits, misses, flushes atomic.Uint64
}

// NewRouter returns an empty cache over g.
func NewRouter(g *topo.Graph) *Router {
	return &Router{g: g, cache: make(map[pathKey]pathVal)}
}

// Graph returns the underlying substrate graph.
func (r *Router) Graph() *topo.Graph { return r.g }

// PathFor computes the route src->dst under the policy, consulting the
// cache when the graph epoch matches. Hits return the same Path value the
// original computation produced (callers must not mutate it).
func (r *Router) PathFor(policy PotatoPolicy, src, dst topo.NodeID) (topo.Path, error) {
	ep := r.g.Epoch()
	key := pathKey{policy, src, dst}
	r.mu.RLock()
	if r.epoch == ep {
		if v, ok := r.cache[key]; ok {
			r.mu.RUnlock()
			r.hits.Add(1)
			return v.path, v.err
		}
	}
	r.mu.RUnlock()
	r.misses.Add(1)
	path, err := PathFor(r.g, policy, src, dst)
	// Store only if the epoch is unchanged since before the computation;
	// a mutation that raced the search makes the result unsafe to keep.
	if r.g.Epoch() == ep {
		r.mu.Lock()
		if r.epoch != ep {
			// The cache was stamped at an older epoch: every entry in it
			// predates some mutation. Invalidate wholesale.
			if len(r.cache) > 0 {
				clear(r.cache)
				r.flushes.Add(1)
			}
			r.epoch = ep
		}
		r.cache[key] = pathVal{path, err}
		r.mu.Unlock()
	}
	return path, err
}

// Hits returns the number of queries answered from the cache.
func (r *Router) Hits() uint64 { return r.hits.Load() }

// Misses returns the number of queries that ran the full path search.
func (r *Router) Misses() uint64 { return r.misses.Load() }

// Flushes returns the number of wholesale invalidations caused by
// topology epoch changes.
func (r *Router) Flushes() uint64 { return r.flushes.Load() }

// Len returns the number of cached entries (positive and negative).
func (r *Router) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.cache)
}
