// Router: a scope-aware epoch-keyed cache in front of PathFor, the
// provider's connect-time route computation. The paper's pitch is that
// the provider absorbs the datapath work tenants used to do by hand —
// which makes path selection a per-connect cost, and repeat (policy,
// src, dst) queries the common case.
//
// Invalidation is scoped (see topo/scope.go): every cache entry records
// the epoch scopes its path traverses and the sum of those scopes'
// epochs at fill time. A degrading mutation (link failure) bumps only
// its scope, so a fault in region A leaves warm paths confined to
// region B untouched; an entry is stale only when a scope it actually
// crosses has mutated. Improving or structural mutations (heals,
// AddNode/AddLink) bump the graph's flush epoch, which invalidates the
// whole cache — a restored link can undercut any cached detour, even
// one that never enters its region.
//
// Misses (including errors) are cached too. Negative caching is safe
// under scoped invalidation: an error entry records no scopes, and the
// only mutations that can turn an unreachable or unknown pair routable
// are improving/structural ones, which flush wholesale.
//
// Concurrent misses for the same key dedup singleflight-style: one
// caller runs the Dijkstra, the rest park on its result, so a cold key
// hit by a stampede of readers costs one search instead of N.
package qos

import (
	"sync"
	"sync/atomic"

	"declnet/internal/topo"
)

// pathKey identifies one cached route query.
type pathKey struct {
	policy   PotatoPolicy
	src, dst topo.NodeID
}

// pathVal is one cached outcome: the path, or the error the search
// produced (negative cache entry), plus the scope signature that
// revalidates it — the deduped scopes the path traverses and the sum of
// their epochs at fill time (nil/0 for errors and empty paths).
type pathVal struct {
	path   topo.Path
	err    error
	scopes []topo.Scope
	sum    uint64
}

// flight is one in-progress computation waiters can park on. ok means
// the leader's result was computed against a stable graph and is safe
// to share; otherwise waiters recompute for themselves.
type flight struct {
	done chan struct{}
	path topo.Path
	err  error
	ok   bool
}

// routerCacheCap bounds the cache. Entries now survive scoped mutations
// indefinitely, so a pathological key churn could grow the map without
// bound; past the cap the next store clears it wholesale (counted as a
// flush) rather than tracking LRU order on the hot path.
const routerCacheCap = 1 << 17

// Router serves policy path queries through a scope-aware cache over
// one graph. Concurrent readers are safe; the graph itself must not be
// mutated while a query is in flight (the API layer's write lock
// guarantees that).
type Router struct {
	g *topo.Graph

	mu         sync.RWMutex
	flushEpoch uint64 // graph flush epoch the cache contents are valid at
	cache      map[pathKey]pathVal
	inflight   map[pathKey]*flight

	hits, misses, flushes     atomic.Uint64
	invalidations             atomic.Uint64 // scoped-stale entries observed
	searches, shared, waiting atomic.Uint64

	// testSearchGate, when set (tests only), runs after the leader's
	// epoch snapshot and before its path search, so tests can hold a
	// computation open or land a mutation mid-search deterministically.
	testSearchGate func()
}

// NewRouter returns an empty cache over g.
func NewRouter(g *topo.Graph) *Router {
	return &Router{
		g:        g,
		cache:    make(map[pathKey]pathVal),
		inflight: make(map[pathKey]*flight),
	}
}

// Graph returns the underlying substrate graph.
func (r *Router) Graph() *topo.Graph { return r.g }

// PathFor computes the route src->dst under the policy, consulting the
// cache when the entry's scope signature is current. Hits return the
// same Path value the original computation produced (callers must not
// mutate it).
func (r *Router) PathFor(policy PotatoPolicy, src, dst topo.NodeID) (topo.Path, error) {
	key := pathKey{policy, src, dst}
	fe := r.g.FlushEpoch()
	stale := false
	r.mu.RLock()
	if r.flushEpoch == fe {
		if v, ok := r.cache[key]; ok {
			if r.g.ScopeEpochSum(v.scopes) == v.sum {
				r.mu.RUnlock()
				r.hits.Add(1)
				return v.path, v.err
			}
			stale = true
		}
	}
	r.mu.RUnlock()
	r.misses.Add(1)
	if stale {
		r.invalidations.Add(1)
	}
	return r.compute(key, true)
}

// compute runs (or joins) the path search for key and installs the
// result. mayWait lets a caller join an in-flight leader; a waiter
// whose leader raced a mutation retries with mayWait=false so it cannot
// park twice.
func (r *Router) compute(key pathKey, mayWait bool) (topo.Path, error) {
	r.mu.Lock()
	// Sync the cache to the current flush epoch first: everything in it
	// predates the flush-worthy mutation.
	if fe := r.g.FlushEpoch(); r.flushEpoch != fe {
		if len(r.cache) > 0 {
			clear(r.cache)
			r.flushes.Add(1)
		}
		r.flushEpoch = fe
	}
	fe := r.flushEpoch
	if f, ok := r.inflight[key]; ok && mayWait {
		r.mu.Unlock()
		r.waiting.Add(1)
		<-f.done
		if f.ok {
			r.shared.Add(1)
			return f.path, f.err
		}
		return r.compute(key, false)
	}
	f := &flight{done: make(chan struct{})}
	if mayWait {
		r.inflight[key] = f
	}
	r.mu.Unlock()

	// Snapshot every scope's epoch around the search. A mutation landing
	// mid-search can tear the result only if it touched state the search
	// read, so storability is judged per scope, not against the single
	// global epoch (which would let a mutation storm in one shard's
	// region mark every other shard's results unstorable forever):
	//
	//   - A positive path is stored iff no scope it traverses mutated
	//     during the search. Degrading mutations elsewhere cannot better
	//     or break a path that avoids them, and every link on the path
	//     was read consistently (its scope stayed quiescent).
	//
	//   - A negative result is stored iff flushEpoch is unchanged.
	//     Degrading mutations only remove capacity: an unreachable pair
	//     computed on a torn degrading-only view is still unreachable
	//     afterwards. Anything improving bumps flushEpoch.
	pre := r.g.ScopeEpochs(nil)
	if r.testSearchGate != nil {
		r.testSearchGate()
	}
	r.searches.Add(1)
	path, err := PathFor(r.g, key.policy, key.src, key.dst)
	var scopes []topo.Scope
	var sum uint64
	storable := r.g.FlushEpoch() == fe
	if err == nil {
		scopes = pathScopes(path)
		sum = r.g.ScopeEpochSum(scopes)
		for _, s := range scopes {
			if int(s) >= len(pre) || r.g.ScopeEpoch(s) != pre[s] {
				storable = false
				break
			}
		}
	}

	r.mu.Lock()
	if mayWait && r.inflight[key] == f {
		delete(r.inflight, key)
	}
	if storable && r.flushEpoch == fe {
		if len(r.cache) >= routerCacheCap {
			clear(r.cache)
			r.flushes.Add(1)
		}
		r.cache[key] = pathVal{path, err, scopes, sum}
	}
	r.mu.Unlock()
	f.path, f.err, f.ok = path, err, storable
	close(f.done)
	return path, err
}

// pathScopes returns the deduped epoch scopes a path traverses. Paths
// are short and cross few scopes, so linear dedup beats a map.
func pathScopes(p topo.Path) []topo.Scope {
	var scopes []topo.Scope
outer:
	for _, l := range p {
		s := l.Scope()
		for _, have := range scopes {
			if have == s {
				continue outer
			}
		}
		scopes = append(scopes, s)
	}
	return scopes
}

// Hits returns the number of queries answered from the cache.
func (r *Router) Hits() uint64 { return r.hits.Load() }

// Misses returns the number of queries not answered from the cache.
func (r *Router) Misses() uint64 { return r.misses.Load() }

// Flushes returns the number of wholesale invalidations (flush-epoch
// changes and cap overflows).
func (r *Router) Flushes() uint64 { return r.flushes.Load() }

// Invalidations returns the number of scoped-stale entries observed: a
// lookup found the key but a scope its path traverses had mutated.
func (r *Router) Invalidations() uint64 { return r.invalidations.Load() }

// Searches returns the number of full path computations actually run.
func (r *Router) Searches() uint64 { return r.searches.Load() }

// Shared returns the number of queries served by another caller's
// in-flight computation (singleflight hits).
func (r *Router) Shared() uint64 { return r.shared.Load() }

// Len returns the number of cached entries (positive and negative).
func (r *Router) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.cache)
}

// inflightLen reports in-progress computations (tests only).
func (r *Router) inflightLen() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.inflight)
}
