package qos

import (
	"runtime"
	"strings"
	"testing"
	"time"

	"declnet/internal/topo"
)

// routerGraph builds a diamond a->{b,c}->d with a cheap backbone branch
// and an expensive transit branch, plus an isolated node x.
func routerGraph(t *testing.T) *topo.Graph {
	t.Helper()
	g := topo.New()
	for _, id := range []topo.NodeID{"a", "b", "c", "d", "x"} {
		g.MustAddNode(topo.Node{ID: id})
	}
	g.MustConnect("ab", "a", "b", topo.Backbone, 1e9, 5*time.Millisecond, 0, 0)
	g.MustConnect("bd", "b", "d", topo.Backbone, 1e9, 5*time.Millisecond, 0, 0)
	g.MustConnect("ac", "a", "c", topo.Transit, 1e9, 20*time.Millisecond, 0, 0)
	g.MustConnect("cd", "c", "d", topo.Transit, 1e9, 20*time.Millisecond, 0, 0)
	return g
}

func pathIDs(p topo.Path) []string {
	ids := make([]string, len(p))
	for i, l := range p {
		ids[i] = l.ID
	}
	return ids
}

func samePath(a, b topo.Path) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].ID != b[i].ID {
			return false
		}
	}
	return true
}

func TestRouterCachesHits(t *testing.T) {
	g := routerGraph(t)
	r := NewRouter(g)
	p1, err := r.PathFor(ColdPotato, "a", "d")
	if err != nil {
		t.Fatal(err)
	}
	p2, err := r.PathFor(ColdPotato, "a", "d")
	if err != nil {
		t.Fatal(err)
	}
	if !samePath(p1, p2) {
		t.Fatalf("cached path %v != first path %v", pathIDs(p2), pathIDs(p1))
	}
	if r.Hits() != 1 || r.Misses() != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", r.Hits(), r.Misses())
	}
	// A different key misses independently.
	if _, err := r.PathFor(HotPotato, "a", "d"); err != nil {
		t.Fatal(err)
	}
	if r.Misses() != 2 {
		t.Fatalf("misses=%d, want 2", r.Misses())
	}
}

func TestRouterInvalidatesOnEpochChange(t *testing.T) {
	g := routerGraph(t)
	r := NewRouter(g)
	p1, err := r.PathFor(ColdPotato, "a", "d")
	if err != nil {
		t.Fatal(err)
	}
	if got := pathIDs(p1); got[0] != "ab:fwd" {
		t.Fatalf("initial path %v, want via backbone", got)
	}
	// Fail the backbone: the cache must not serve the old route.
	if err := g.SetPairUp("ab", false); err != nil {
		t.Fatal(err)
	}
	p2, err := r.PathFor(ColdPotato, "a", "d")
	if err != nil {
		t.Fatal(err)
	}
	if samePath(p1, p2) {
		t.Fatalf("stale path %v served after link failure", pathIDs(p2))
	}
	want, err := PathFor(g, ColdPotato, "a", "d")
	if err != nil {
		t.Fatal(err)
	}
	if !samePath(p2, want) {
		t.Fatalf("post-fault path %v != uncached %v", pathIDs(p2), pathIDs(want))
	}
	// The routerGraph has no provider regions, so the failed link is
	// cross-cut scoped: the entry goes scoped-stale, no wholesale flush.
	if r.Invalidations() != 1 {
		t.Fatalf("invalidations=%d, want 1", r.Invalidations())
	}
	if r.Flushes() != 0 {
		t.Fatalf("flushes=%d, want 0 (link failure is a scoped mutation)", r.Flushes())
	}
	// Healing the link IS flush-worthy: the restored backbone must win
	// back the route even though the cached detour never crossed it.
	if err := g.SetPairUp("ab", true); err != nil {
		t.Fatal(err)
	}
	p3, err := r.PathFor(ColdPotato, "a", "d")
	if err != nil {
		t.Fatal(err)
	}
	if !samePath(p3, p1) {
		t.Fatalf("post-heal path %v, want backbone route %v", pathIDs(p3), pathIDs(p1))
	}
	if r.Flushes() != 1 {
		t.Fatalf("flushes=%d, want 1 after heal", r.Flushes())
	}
}

func TestRouterNegativeCaching(t *testing.T) {
	g := routerGraph(t)
	r := NewRouter(g)
	// x is isolated: the error outcome must be cached...
	if _, err := r.PathFor(ColdPotato, "a", "x"); err == nil {
		t.Fatal("want error for unreachable destination")
	}
	if _, err := r.PathFor(ColdPotato, "a", "x"); err == nil {
		t.Fatal("want cached error for unreachable destination")
	}
	if r.Hits() != 1 {
		t.Fatalf("hits=%d, want 1 (negative entry)", r.Hits())
	}
	// ...and forgotten once topology changes make x reachable.
	g.MustConnect("dx", "d", "x", topo.Backbone, 1e9, time.Millisecond, 0, 0)
	p, err := r.PathFor(ColdPotato, "a", "x")
	if err != nil {
		t.Fatalf("x still unreachable after heal: %v", err)
	}
	if len(p) != 3 {
		t.Fatalf("path %v, want 3 hops", pathIDs(p))
	}
}

func TestRouterMatchesUncachedAcrossPolicies(t *testing.T) {
	g := routerGraph(t)
	r := NewRouter(g)
	for _, pol := range []PotatoPolicy{HotPotato, ColdPotato, Dedicated} {
		got, gotErr := r.PathFor(pol, "a", "d")
		want, wantErr := PathFor(g, pol, "a", "d")
		if (gotErr == nil) != (wantErr == nil) {
			t.Fatalf("%v: err=%v, want %v", pol, gotErr, wantErr)
		}
		if gotErr != nil {
			if gotErr.Error() != wantErr.Error() {
				t.Fatalf("%v: err %q != %q", pol, gotErr, wantErr)
			}
			continue
		}
		if !samePath(got, want) {
			t.Fatalf("%v: cached %v != uncached %v", pol, pathIDs(got), pathIDs(want))
		}
	}
}

// regionedGraph builds two provider regions with internal detour
// diamonds (a1->a2 direct or via am) joined by a backbone, so both
// region-confined and cross-region queries are expressible.
func regionedGraph(t *testing.T) *topo.Graph {
	t.Helper()
	g := topo.New()
	add := func(id topo.NodeID, region string) {
		g.MustAddNode(topo.Node{ID: id, Provider: "aws", Region: region})
	}
	for _, n := range []topo.NodeID{"a1", "a2", "am"} {
		add(n, "A")
	}
	for _, n := range []topo.NodeID{"b1", "b2", "bm"} {
		add(n, "B")
	}
	g.MustConnect("a12", "a1", "a2", topo.Fabric, 1e9, 2*time.Millisecond, 0, 0)
	g.MustConnect("a1m", "a1", "am", topo.Fabric, 1e9, 5*time.Millisecond, 0, 0)
	g.MustConnect("am2", "am", "a2", topo.Fabric, 1e9, 5*time.Millisecond, 0, 0)
	g.MustConnect("b12", "b1", "b2", topo.Fabric, 1e9, 2*time.Millisecond, 0, 0)
	g.MustConnect("b1m", "b1", "bm", topo.Fabric, 1e9, 5*time.Millisecond, 0, 0)
	g.MustConnect("bm2", "bm", "b2", topo.Fabric, 1e9, 5*time.Millisecond, 0, 0)
	g.MustConnect("ab", "a2", "b1", topo.Backbone, 1e9, 20*time.Millisecond, 0, 0)
	return g
}

// TestRouterScopedIsolation is the point of the whole design: a fault
// in region A must not evict warm paths confined to region B, and a
// cross-cut fault must not evict either region's internal paths.
func TestRouterScopedIsolation(t *testing.T) {
	g := regionedGraph(t)
	r := NewRouter(g)
	warm := func(src, dst topo.NodeID) topo.Path {
		t.Helper()
		p, err := r.PathFor(ColdPotato, src, dst)
		if err != nil {
			t.Fatalf("%s->%s: %v", src, dst, err)
		}
		return p
	}
	warm("a1", "a2")
	warm("b1", "b2")
	warm("a1", "b2")
	base := r.Searches()

	// Fail region A's direct link: only entries crossing scope A go
	// stale. The B-confined entry must still hit.
	if err := g.SetPairUp("a12", false); err != nil {
		t.Fatal(err)
	}
	warm("b1", "b2")
	if got := r.Searches(); got != base {
		t.Fatalf("region-B path recomputed after region-A fault (searches %d -> %d)", base, got)
	}
	if pa := warm("a1", "a2"); pa[0].ID != "a1m:fwd" {
		t.Fatalf("region-A path %v, want detour via am", pathIDs(pa))
	}
	if r.Flushes() != 0 {
		t.Fatalf("flushes=%d, want 0 (scoped fault)", r.Flushes())
	}

	// Fail the backbone: cross-cut entries go stale, region-confined
	// entries (including A's freshly cached detour) survive.
	mid := r.Searches()
	if err := g.SetPairUp("ab", false); err != nil {
		t.Fatal(err)
	}
	warm("a1", "a2")
	warm("b1", "b2")
	if got := r.Searches(); got != mid {
		t.Fatalf("region paths recomputed after cross-cut fault (searches %d -> %d)", mid, got)
	}
	if _, err := r.PathFor(ColdPotato, "a1", "b2"); err == nil {
		t.Fatal("cross-region path should fail with backbone down")
	}

	// Heal region A's link: wholesale flush, and the direct route wins
	// back over the cached detour.
	if err := g.SetPairUp("a12", true); err != nil {
		t.Fatal(err)
	}
	if pa := warm("a1", "a2"); pa[0].ID != "a12:fwd" {
		t.Fatalf("post-heal path %v, want direct a12", pathIDs(pa))
	}
	if r.Flushes() != 1 {
		t.Fatalf("flushes=%d, want 1 after heal", r.Flushes())
	}
}

// TestRouterParityWithUncachedUnderScopedMutations drives a fixed
// mutation schedule and checks every cached answer against a fresh
// uncached computation — the byte-parity contract scoped invalidation
// must preserve.
func TestRouterParityWithUncachedUnderScopedMutations(t *testing.T) {
	g := regionedGraph(t)
	r := NewRouter(g)
	pairs := [][2]topo.NodeID{
		{"a1", "a2"}, {"b1", "b2"}, {"a1", "b2"}, {"b2", "a1"}, {"am", "bm"},
	}
	checkAll := func(step string) {
		t.Helper()
		for _, pol := range []PotatoPolicy{HotPotato, ColdPotato} {
			for _, pr := range pairs {
				got, gotErr := r.PathFor(pol, pr[0], pr[1])
				want, wantErr := PathFor(g, pol, pr[0], pr[1])
				if (gotErr == nil) != (wantErr == nil) {
					t.Fatalf("%s %v %s->%s: err=%v, want %v", step, pol, pr[0], pr[1], gotErr, wantErr)
				}
				if gotErr != nil {
					if gotErr.Error() != wantErr.Error() {
						t.Fatalf("%s %v %s->%s: err %q != %q", step, pol, pr[0], pr[1], gotErr, wantErr)
					}
					continue
				}
				if !samePath(got, want) {
					t.Fatalf("%s %v %s->%s: cached %v != uncached %v",
						step, pol, pr[0], pr[1], pathIDs(got), pathIDs(want))
				}
			}
		}
	}
	checkAll("initial")
	schedule := []struct {
		id string
		up bool
	}{
		{"a12", false}, {"b1m", false}, {"ab", false}, {"a12", true},
		{"ab", true}, {"b12", false}, {"b1m", true}, {"a1m", false},
		{"b12", true}, {"a1m", true},
	}
	for _, s := range schedule {
		if err := g.SetPairUp(s.id, s.up); err != nil {
			t.Fatal(err)
		}
		checkAll(s.id)
	}
	if r.Hits() == 0 || r.Invalidations() == 0 || r.Flushes() == 0 {
		t.Fatalf("schedule exercised hits=%d invalidations=%d flushes=%d; want all > 0",
			r.Hits(), r.Invalidations(), r.Flushes())
	}
}

// TestRouterSingleflight: concurrent misses for the same key run one
// Dijkstra; the stampede parks on the leader and shares its result.
func TestRouterSingleflight(t *testing.T) {
	g := routerGraph(t)
	r := NewRouter(g)
	gate := make(chan struct{})
	r.testSearchGate = func() { <-gate }

	const waiters = 7
	results := make(chan string, waiters+1)
	query := func() {
		p, err := r.PathFor(ColdPotato, "a", "d")
		if err != nil {
			results <- "err:" + err.Error()
			return
		}
		results <- strings.Join(pathIDs(p), ",")
	}
	go query() // leader: blocks in the gate
	// Wait until the leader has registered its flight, then pile on.
	for r.inflightLen() == 0 {
		runtime.Gosched()
	}
	for i := 0; i < waiters; i++ {
		go query()
	}
	for r.waiting.Load() < waiters {
		runtime.Gosched()
	}
	close(gate)
	want := ""
	for i := 0; i < waiters+1; i++ {
		got := <-results
		if want == "" {
			want = got
		} else if got != want {
			t.Fatalf("diverging results %q vs %q", got, want)
		}
	}
	if r.Searches() != 1 {
		t.Fatalf("searches=%d, want 1 (singleflight)", r.Searches())
	}
	if r.Shared() != waiters {
		t.Fatalf("shared=%d, want %d", r.Shared(), waiters)
	}
}

// TestRouterStorableUnderForeignScopeMutation is the sharded-control-
// plane regression test: a mutation landing in region A *while* a path
// wholly inside region B is being computed must not stop that result
// from being cached (and must not evict it afterwards). The pre-fix
// storability check compared the graph's single global epoch around the
// search, so a mutation storm confined to one (tenant, region) shard
// marked every other shard's computations unstorable forever —
// cross-shard cache poisoning with no soundness payoff.
func TestRouterStorableUnderForeignScopeMutation(t *testing.T) {
	g := regionedGraph(t)
	r := NewRouter(g)
	// While the leader computes b1->b2 (wholly inside scope B), degrade
	// region A. Global epoch moves; scope B's epoch does not.
	fired := false
	r.testSearchGate = func() {
		if !fired {
			fired = true
			if err := g.SetPairUp("a12", false); err != nil {
				t.Error(err)
			}
		}
	}
	if _, err := r.PathFor(ColdPotato, "b1", "b2"); err != nil {
		t.Fatal(err)
	}
	r.testSearchGate = nil
	if _, err := r.PathFor(ColdPotato, "b1", "b2"); err != nil {
		t.Fatal(err)
	}
	if r.Searches() != 1 {
		t.Fatalf("searches=%d, want 1: region-A mutation mid-search made the region-B result unstorable", r.Searches())
	}
	if r.Hits() != 1 {
		t.Fatalf("hits=%d, want 1", r.Hits())
	}

	// And once cached, further region-A churn must not invalidate it.
	for _, mut := range []struct {
		id string
		up bool
	}{{"a1m", false}, {"a1m", false}, {"a12", false}} {
		_ = g.SetPairUp(mut.id, mut.up)
	}
	if _, err := r.PathFor(ColdPotato, "b1", "b2"); err != nil {
		t.Fatal(err)
	}
	if r.Searches() != 1 || r.Invalidations() != 0 {
		t.Fatalf("searches=%d invalidations=%d after foreign-scope churn, want 1/0",
			r.Searches(), r.Invalidations())
	}
}

// TestRouterUnstorableWhenTraversedScopeMutates keeps the soundness
// guard honest: a mid-search mutation in a scope the computed path DOES
// traverse still makes the result unstorable.
func TestRouterUnstorableWhenTraversedScopeMutates(t *testing.T) {
	g := regionedGraph(t)
	r := NewRouter(g)
	fired := false
	r.testSearchGate = func() {
		if !fired {
			fired = true
			// Degrade scope B itself mid-search (b1m is off the b1->b2
			// best path, but it shares the scope).
			if err := g.SetPairUp("b1m", false); err != nil {
				t.Error(err)
			}
		}
	}
	if _, err := r.PathFor(ColdPotato, "b1", "b2"); err != nil {
		t.Fatal(err)
	}
	r.testSearchGate = nil
	if _, err := r.PathFor(ColdPotato, "b1", "b2"); err != nil {
		t.Fatal(err)
	}
	if r.Searches() != 2 {
		t.Fatalf("searches=%d, want 2: torn result in a traversed scope must not be cached", r.Searches())
	}
}

// TestRouterNegativeStorableUnderDegradingMutation: "no path" computed
// while degrading mutations land stays cacheable — removals cannot make
// a destination reachable; only improving mutations (which flush) can.
func TestRouterNegativeStorableUnderDegradingMutation(t *testing.T) {
	g := regionedGraph(t)
	if err := g.SetPairUp("ab", false); err != nil {
		t.Fatal(err)
	}
	r := NewRouter(g)
	fired := false
	r.testSearchGate = func() {
		if !fired {
			fired = true
			if err := g.SetPairUp("a12", false); err != nil {
				t.Error(err)
			}
		}
	}
	if _, err := r.PathFor(ColdPotato, "a1", "b2"); err == nil {
		t.Fatal("expected no path with backbone down")
	}
	r.testSearchGate = nil
	if _, err := r.PathFor(ColdPotato, "a1", "b2"); err == nil {
		t.Fatal("expected no path with backbone down")
	}
	if r.Searches() != 1 {
		t.Fatalf("searches=%d, want 1: degrading churn must not block negative caching", r.Searches())
	}
}
