package qos

import (
	"testing"
	"time"

	"declnet/internal/topo"
)

// routerGraph builds a diamond a->{b,c}->d with a cheap backbone branch
// and an expensive transit branch, plus an isolated node x.
func routerGraph(t *testing.T) *topo.Graph {
	t.Helper()
	g := topo.New()
	for _, id := range []topo.NodeID{"a", "b", "c", "d", "x"} {
		g.MustAddNode(topo.Node{ID: id})
	}
	g.MustConnect("ab", "a", "b", topo.Backbone, 1e9, 5*time.Millisecond, 0, 0)
	g.MustConnect("bd", "b", "d", topo.Backbone, 1e9, 5*time.Millisecond, 0, 0)
	g.MustConnect("ac", "a", "c", topo.Transit, 1e9, 20*time.Millisecond, 0, 0)
	g.MustConnect("cd", "c", "d", topo.Transit, 1e9, 20*time.Millisecond, 0, 0)
	return g
}

func pathIDs(p topo.Path) []string {
	ids := make([]string, len(p))
	for i, l := range p {
		ids[i] = l.ID
	}
	return ids
}

func samePath(a, b topo.Path) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].ID != b[i].ID {
			return false
		}
	}
	return true
}

func TestRouterCachesHits(t *testing.T) {
	g := routerGraph(t)
	r := NewRouter(g)
	p1, err := r.PathFor(ColdPotato, "a", "d")
	if err != nil {
		t.Fatal(err)
	}
	p2, err := r.PathFor(ColdPotato, "a", "d")
	if err != nil {
		t.Fatal(err)
	}
	if !samePath(p1, p2) {
		t.Fatalf("cached path %v != first path %v", pathIDs(p2), pathIDs(p1))
	}
	if r.Hits() != 1 || r.Misses() != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", r.Hits(), r.Misses())
	}
	// A different key misses independently.
	if _, err := r.PathFor(HotPotato, "a", "d"); err != nil {
		t.Fatal(err)
	}
	if r.Misses() != 2 {
		t.Fatalf("misses=%d, want 2", r.Misses())
	}
}

func TestRouterInvalidatesOnEpochChange(t *testing.T) {
	g := routerGraph(t)
	r := NewRouter(g)
	p1, err := r.PathFor(ColdPotato, "a", "d")
	if err != nil {
		t.Fatal(err)
	}
	if got := pathIDs(p1); got[0] != "ab:fwd" {
		t.Fatalf("initial path %v, want via backbone", got)
	}
	// Fail the backbone: the cache must not serve the old route.
	if err := g.SetPairUp("ab", false); err != nil {
		t.Fatal(err)
	}
	p2, err := r.PathFor(ColdPotato, "a", "d")
	if err != nil {
		t.Fatal(err)
	}
	if samePath(p1, p2) {
		t.Fatalf("stale path %v served after link failure", pathIDs(p2))
	}
	want, err := PathFor(g, ColdPotato, "a", "d")
	if err != nil {
		t.Fatal(err)
	}
	if !samePath(p2, want) {
		t.Fatalf("post-fault path %v != uncached %v", pathIDs(p2), pathIDs(want))
	}
	if r.Flushes() != 1 {
		t.Fatalf("flushes=%d, want 1", r.Flushes())
	}
}

func TestRouterNegativeCaching(t *testing.T) {
	g := routerGraph(t)
	r := NewRouter(g)
	// x is isolated: the error outcome must be cached...
	if _, err := r.PathFor(ColdPotato, "a", "x"); err == nil {
		t.Fatal("want error for unreachable destination")
	}
	if _, err := r.PathFor(ColdPotato, "a", "x"); err == nil {
		t.Fatal("want cached error for unreachable destination")
	}
	if r.Hits() != 1 {
		t.Fatalf("hits=%d, want 1 (negative entry)", r.Hits())
	}
	// ...and forgotten once topology changes make x reachable.
	g.MustConnect("dx", "d", "x", topo.Backbone, 1e9, time.Millisecond, 0, 0)
	p, err := r.PathFor(ColdPotato, "a", "x")
	if err != nil {
		t.Fatalf("x still unreachable after heal: %v", err)
	}
	if len(p) != 3 {
		t.Fatalf("path %v, want 3 hops", pathIDs(p))
	}
}

func TestRouterMatchesUncachedAcrossPolicies(t *testing.T) {
	g := routerGraph(t)
	r := NewRouter(g)
	for _, pol := range []PotatoPolicy{HotPotato, ColdPotato, Dedicated} {
		got, gotErr := r.PathFor(pol, "a", "d")
		want, wantErr := PathFor(g, pol, "a", "d")
		if (gotErr == nil) != (wantErr == nil) {
			t.Fatalf("%v: err=%v, want %v", pol, gotErr, wantErr)
		}
		if gotErr != nil {
			if gotErr.Error() != wantErr.Error() {
				t.Fatalf("%v: err %q != %q", pol, gotErr, wantErr)
			}
			continue
		}
		if !samePath(got, want) {
			t.Fatalf("%v: cached %v != uncached %v", pol, pathIDs(got), pathIDs(want))
		}
	}
}
