package qos

import (
	"math"
	"testing"
	"time"

	"declnet/internal/sim"
	"declnet/internal/topo"
)

func TestTokenBucketBasics(t *testing.T) {
	b := NewTokenBucket(1000, 500) // 1000 tokens/s, burst 500
	now := sim.Time(0)
	if !b.Take(now, 500) {
		t.Fatal("full bucket refused its burst")
	}
	if b.Take(now, 1) {
		t.Fatal("empty bucket granted tokens")
	}
	// After 100ms, 100 tokens refill.
	now = 100 * time.Millisecond
	if !b.Take(now, 100) {
		t.Fatal("refilled tokens not granted")
	}
	if b.Take(now, 1) {
		t.Fatal("over-grant after refill")
	}
}

func TestTokenBucketBurstCap(t *testing.T) {
	b := NewTokenBucket(1000, 500)
	b.Take(0, 0)
	if got := b.Available(10 * time.Second); got != 500 {
		t.Fatalf("Available after long idle = %v, want burst cap 500", got)
	}
}

// fakeFlow implements RateSetter for limiter tests.
type fakeFlow struct {
	demand float64
	cap    float64
}

func (f *fakeFlow) SetCap(bps float64) { f.cap = bps }
func (f *fakeFlow) Demand() float64    { return f.demand }

// rate returns what the flow actually sends: min(demand, cap).
func (f *fakeFlow) rate() float64 { return math.Min(f.demand, f.cap) }

func TestEnforcerWaterfill(t *testing.T) {
	e := NewEnforcer("e1")
	small := &fakeFlow{demand: 10e6}
	big := &fakeFlow{demand: 100e6}
	e.Attach(small)
	e.Attach(big)
	e.alloc = 60e6
	e.apply()
	// Max-min: small gets its 10M, big gets the remaining 50M.
	if math.Abs(small.cap-10e6) > 1 {
		t.Fatalf("small cap = %v, want 10M", small.cap)
	}
	if math.Abs(big.cap-50e6) > 1 {
		t.Fatalf("big cap = %v, want 50M", big.cap)
	}
}

func TestDistributedLimiterConvergence(t *testing.T) {
	eng := sim.New(1)
	e1, e2 := NewEnforcer("e1"), NewEnforcer("e2")
	f1 := &fakeFlow{demand: 80e6}
	f2 := &fakeFlow{demand: 80e6}
	e1.Attach(f1)
	e2.Attach(f2)
	d := NewDistributedLimiter(eng, 100e6, 10*time.Millisecond, e1, e2)
	eng.RunUntil(50 * time.Millisecond)
	d.Stop()
	// Equal demands, quota 100M: 50M each.
	if math.Abs(f1.rate()-50e6) > 1e3 || math.Abs(f2.rate()-50e6) > 1e3 {
		t.Fatalf("rates = %v, %v; want 50M each", f1.rate(), f2.rate())
	}
	total := f1.rate() + f2.rate()
	if total > 100e6*1.001 {
		t.Fatalf("quota exceeded: %v", total)
	}
	if d.Rounds == 0 {
		t.Fatal("controller never ran")
	}
	if d.EnforcementError() > 0.01 {
		t.Fatalf("enforcement error = %v", d.EnforcementError())
	}
}

func TestDistributedLimiterSkewedDemand(t *testing.T) {
	eng := sim.New(1)
	e1, e2, e3 := NewEnforcer("e1"), NewEnforcer("e2"), NewEnforcer("e3")
	fSmall := &fakeFlow{demand: 10e6}
	fMid := &fakeFlow{demand: 40e6}
	fBig := &fakeFlow{demand: 200e6}
	e1.Attach(fSmall)
	e2.Attach(fMid)
	e3.Attach(fBig)
	d := NewDistributedLimiter(eng, 100e6, 10*time.Millisecond, e1, e2, e3)
	eng.RunUntil(30 * time.Millisecond)
	d.Stop()
	// Waterfill: small 10M, mid 40M, big gets remaining 50M.
	if math.Abs(fSmall.rate()-10e6) > 1e3 {
		t.Fatalf("small = %v", fSmall.rate())
	}
	if math.Abs(fMid.rate()-40e6) > 1e3 {
		t.Fatalf("mid = %v", fMid.rate())
	}
	if math.Abs(fBig.rate()-50e6) > 1e3 {
		t.Fatalf("big = %v", fBig.rate())
	}
}

func TestDistributedLimiterUndersubscribed(t *testing.T) {
	eng := sim.New(1)
	e1 := NewEnforcer("e1")
	f1 := &fakeFlow{demand: 30e6}
	e1.Attach(f1)
	d := NewDistributedLimiter(eng, 100e6, 10*time.Millisecond, e1)
	eng.RunUntil(20 * time.Millisecond)
	d.Stop()
	if math.Abs(f1.rate()-30e6) > 1e3 {
		t.Fatalf("undersubscribed flow capped to %v, want full demand", f1.rate())
	}
	if d.EnforcementError() > 0.01 {
		t.Fatalf("error = %v", d.EnforcementError())
	}
}

func TestDistributedLimiterChurn(t *testing.T) {
	eng := sim.New(1)
	e1 := NewEnforcer("e1")
	f1 := &fakeFlow{demand: 200e6}
	e1.Attach(f1)
	d := NewDistributedLimiter(eng, 100e6, 10*time.Millisecond, e1)
	eng.RunUntil(15 * time.Millisecond)
	if math.Abs(f1.rate()-100e6) > 1e3 {
		t.Fatalf("solo flow = %v, want full quota", f1.rate())
	}
	// A second flow arrives; the next round must rebalance toward 50/50.
	f2 := &fakeFlow{demand: 200e6}
	e1.Attach(f2)
	eng.RunUntil(35 * time.Millisecond)
	d.Stop()
	if math.Abs(f1.rate()-50e6) > 1e3 || math.Abs(f2.rate()-50e6) > 1e3 {
		t.Fatalf("post-churn rates = %v, %v", f1.rate(), f2.rate())
	}
}

func TestSetQuota(t *testing.T) {
	eng := sim.New(1)
	e1 := NewEnforcer("e1")
	f1 := &fakeFlow{demand: 300e6}
	e1.Attach(f1)
	d := NewDistributedLimiter(eng, 100e6, 10*time.Millisecond, e1)
	eng.RunUntil(15 * time.Millisecond)
	d.SetQuota(200e6)
	eng.RunUntil(35 * time.Millisecond)
	d.Stop()
	if math.Abs(f1.rate()-200e6) > 1e3 {
		t.Fatalf("rate after quota raise = %v, want 200M", f1.rate())
	}
}

func TestEnforcerDetach(t *testing.T) {
	e := NewEnforcer("e")
	f := &fakeFlow{demand: 10e6}
	e.Attach(f)
	e.Detach(f)
	if e.Demand() != 0 {
		t.Fatalf("Demand after detach = %v", e.Demand())
	}
}

func TestPotatoPaths(t *testing.T) {
	w := topo.BuildFig1(1)
	src := topo.HostID(w.CloudA, w.RegionsA[0], "az1", 1)
	dst := topo.HostID(w.CloudB, w.RegionsB[0], "az1", 1)

	hot, err := PathFor(w.Graph, HotPotato, src, dst)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := PathFor(w.Graph, ColdPotato, src, dst)
	if err != nil {
		t.Fatal(err)
	}
	ded, err := PathFor(w.Graph, Dedicated, src, dst)
	if err != nil {
		t.Fatal(err)
	}
	count := func(p topo.Path, k topo.LinkKind) int {
		n := 0
		for _, l := range p {
			if l.Kind == k {
				n++
			}
		}
		return n
	}
	// Dedicated path must avoid transit entirely and cross the IXP.
	if count(ded, topo.Transit) != 0 {
		t.Fatalf("dedicated path crossed transit: %v", ded.Nodes())
	}
	if count(ded, topo.Dedicated) != 2 {
		t.Fatalf("dedicated path uses %d dedicated links, want 2", count(ded, topo.Dedicated))
	}
	// Hot potato uses no more backbone links than cold; cold uses no more
	// transit links than hot (the defining tradeoff).
	if count(hot, topo.Backbone) > count(cold, topo.Backbone) {
		t.Fatalf("hot uses more backbone (%d) than cold (%d)",
			count(hot, topo.Backbone), count(cold, topo.Backbone))
	}
	if count(cold, topo.Transit) > count(hot, topo.Transit) {
		t.Fatalf("cold uses more transit (%d) than hot (%d)",
			count(cold, topo.Transit), count(hot, topo.Transit))
	}
}

func TestDedicatedPathAbsent(t *testing.T) {
	// A world with no dedicated circuits must fail Dedicated policy.
	b := topo.NewBuilder()
	b.AddProvider(topo.ProviderSpec{Name: "p1", Regions: []topo.RegionSpec{{Name: "r1", Zones: 1, HostsPerZone: 1}}})
	b.AddProvider(topo.ProviderSpec{Name: "p2", Regions: []topo.RegionSpec{{Name: "r2", Zones: 1, HostsPerZone: 1}}})
	tr := b.AddInternetCore(1)
	b.AttachBorderToInternet("p1", "r1", tr[0])
	b.AttachBorderToInternet("p2", "r2", tr[0])
	g := b.Graph()
	src := topo.HostID("p1", "r1", "az1", 1)
	dst := topo.HostID("p2", "r2", "az1", 1)
	if _, err := PathFor(g, Dedicated, src, dst); err == nil {
		t.Fatal("Dedicated policy found a path with no dedicated circuits")
	}
	if _, err := PathFor(g, HotPotato, src, dst); err != nil {
		t.Fatalf("hot potato failed on public-only world: %v", err)
	}
}

func TestPotatoPolicyString(t *testing.T) {
	if HotPotato.String() != "hot" || ColdPotato.String() != "cold" || Dedicated.String() != "dedicated" {
		t.Fatal("potato names wrong")
	}
	if _, err := PathFor(topo.New(), PotatoPolicy(99), "a", "b"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}
