module declnet

go 1.22
