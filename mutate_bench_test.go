// Mutation-plane benchmark: the scoped-epoch counterpart to
// BenchmarkConnect. readonly is the pure warm-connect plane; mixed
// interleaves ~5% topology mutations — scoped link failures in regions
// the measured path never enters, plus a periodic batched heal — into
// the same connect stream. Under the old global epoch every one of
// those mutations flushed the whole path cache and the mixed plane
// degenerated to cold connects; under scoped epochs the off-path
// failures leave the warm path valid and only the (rare, batched) heals
// pay a wholesale flush. The mixed/readonly ns-per-op ratio and the
// sustained mutations/sec are the acceptance numbers tracked in
// BENCH_mutate.json.
package declnet

import (
	"testing"

	"declnet/internal/core"
	"declnet/internal/exp"
	"declnet/internal/topo"
)

// mutateChurnSet is how many off-path links the mixed workload cycles
// through, and mutateHealEvery is the period (in ops) of the batched
// heal that restores them.
const (
	mutateChurnSet  = 8
	mutateHealEvery = 500
)

func BenchmarkMutatePlane(b *testing.B) {
	setup := func(b *testing.B) (*exp.DeclarativeFig1, []*topo.Link) {
		b.Helper()
		d, err := exp.BuildDeclarativeFig1(1, 50)
		if err != nil {
			b.Fatal(err)
		}
		// Prime every cache and learn which epoch scopes the measured
		// path traverses.
		conn, err := d.Cloud.Connect(exp.Tenant, d.Spark1, d.DBService, core.ConnectOpts{SizeBytes: -1})
		if err != nil {
			b.Fatal(err)
		}
		onPath := make(map[topo.Scope]bool)
		for _, l := range conn.Path {
			onPath[l.Scope()] = true
		}
		conn.Close()
		// Churn targets: region-scoped links in regions the path never
		// enters, so their failures are invisible to the warm entry.
		var offPath []*topo.Link
		for _, l := range d.Cloud.G.Links() {
			if s := l.Scope(); s != topo.CrossCut && !onPath[s] {
				offPath = append(offPath, l)
			}
		}
		if len(offPath) < mutateChurnSet {
			b.Fatalf("only %d off-path scoped links, want >= %d", len(offPath), mutateChurnSet)
		}
		return d, offPath[:mutateChurnSet]
	}

	connect := func(b *testing.B, d *exp.DeclarativeFig1) {
		conn, err := d.Cloud.Connect(exp.Tenant, d.Spark1, d.DBService, core.ConnectOpts{SizeBytes: -1})
		if err != nil {
			b.Fatal(err)
		}
		conn.Close()
	}

	b.Run("readonly", func(b *testing.B) {
		d, _ := setup(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			connect(b, d)
		}
	})

	b.Run("mixed", func(b *testing.B) {
		d, churn := setup(b)
		g := d.Cloud.G
		mutations := 0
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			switch {
			case i%mutateHealEvery == mutateHealEvery-1:
				// Batched heal: N restores, one coalesced wholesale flush.
				err := g.Batch(func() error {
					for _, l := range churn {
						if err := g.SetLinkUp(l.ID, true); err != nil {
							return err
						}
					}
					return nil
				})
				if err != nil {
					b.Fatal(err)
				}
				mutations += len(churn)
			case i%20 == 19:
				// Scoped degradation in a region the path never crosses:
				// bumps that scope's epoch, leaves the warm entry valid.
				l := churn[(i/20)%len(churn)]
				if err := g.SetLinkUp(l.ID, false); err != nil {
					b.Fatal(err)
				}
				mutations++
			default:
				connect(b, d)
			}
		}
		b.StopTimer()
		if secs := b.Elapsed().Seconds(); secs > 0 && mutations > 0 {
			b.ReportMetric(float64(mutations)/secs, "mutations/sec")
		}
	})
}
