package declnet

import (
	"testing"
	"time"
)

func fig1(t *testing.T) (*World, *Tenant) {
	t.Helper()
	w, err := NewFig1World(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	return w, w.Tenant("acme")
}

func TestFacadeEndToEnd(t *testing.T) {
	w, acme := fig1(t)
	f := w.Fig1

	client, err := acme.RequestEIP(w.Host(f.CloudA, f.RegionsA[0], "az1", 1))
	if err != nil {
		t.Fatal(err)
	}
	be1, err := acme.RequestEIP(w.Host(f.CloudB, f.RegionsB[0], "az1", 1))
	if err != nil {
		t.Fatal(err)
	}
	be2, err := acme.RequestEIP(w.Host(f.CloudB, f.RegionsB[0], "az2", 1))
	if err != nil {
		t.Fatal(err)
	}
	svc, err := acme.RequestSIP(f.CloudB)
	if err != nil {
		t.Fatal(err)
	}
	if err := acme.Bind(be1, svc, 1); err != nil {
		t.Fatal(err)
	}
	if err := acme.Bind(be2, svc, 1); err != nil {
		t.Fatal(err)
	}
	// Default-off first.
	if _, err := acme.Connect(client, svc, ConnectOpts{SizeBytes: 1}); err == nil {
		t.Fatal("default-off violated via facade")
	}
	if err := acme.SetPermitList(svc, []Prefix{Exact(client)}); err != nil {
		t.Fatal(err)
	}
	var fct time.Duration
	if _, err := acme.Transfer(client, svc, 1e6, func(d time.Duration) { fct = d }); err != nil {
		t.Fatal(err)
	}
	w.Run()
	if fct == 0 {
		t.Fatal("transfer never completed")
	}
	rtt, _, err := acme.Probe(client, svc)
	if err != nil || rtt <= 0 {
		t.Fatalf("probe = %v, %v", rtt, err)
	}
}

func TestFacadeQoSAndPotato(t *testing.T) {
	w, acme := fig1(t)
	f := w.Fig1
	if err := acme.SetQoS(f.CloudA, f.RegionsA[0], 1e9); err != nil {
		t.Fatal(err)
	}
	if err := acme.SetPotato(f.CloudA, ColdPotato); err != nil {
		t.Fatal(err)
	}
	if err := acme.SetQoS("nope", "r", 1); err == nil {
		t.Fatal("unknown provider accepted")
	}
}

func TestFacadeGroups(t *testing.T) {
	w, acme := fig1(t)
	f := w.Fig1
	a, _ := acme.RequestEIP(w.Host(f.CloudA, f.RegionsA[0], "az1", 1))
	b, _ := acme.RequestEIP(w.Host(f.CloudA, f.RegionsA[0], "az1", 2))
	dst, _ := acme.RequestEIP(w.Host(f.CloudA, f.RegionsA[1], "az1", 1))
	if err := acme.CreateGroup("web", a, b); err != nil {
		t.Fatal(err)
	}
	if err := acme.SetPermitList(dst, nil, "web"); err != nil {
		t.Fatal(err)
	}
	if _, err := acme.Connect(a, dst, ConnectOpts{SizeBytes: -1}); err != nil {
		t.Fatal(err)
	}
}

func TestFacadePermitRevoke(t *testing.T) {
	w, acme := fig1(t)
	f := w.Fig1
	src, _ := acme.RequestEIP(w.Host(f.CloudA, f.RegionsA[0], "az1", 1))
	dst, _ := acme.RequestEIP(w.Host(f.CloudB, f.RegionsB[0], "az1", 1))
	if err := acme.Permit(dst, Exact(src)); err != nil {
		t.Fatal(err)
	}
	if _, err := acme.Connect(src, dst, ConnectOpts{SizeBytes: -1}); err != nil {
		t.Fatal(err)
	}
	if err := acme.Revoke(dst, Exact(src)); err != nil {
		t.Fatal(err)
	}
	if _, err := acme.Connect(src, dst, ConnectOpts{SizeBytes: -1}); err == nil {
		t.Fatal("revoked source still admitted")
	}
	if err := acme.ReleaseEIP(dst); err != nil {
		t.Fatal(err)
	}
	if err := acme.ReleaseEIP(dst); err == nil {
		t.Fatal("double release accepted")
	}
}

func TestFacadeUnbindAndVMCap(t *testing.T) {
	w, acme := fig1(t)
	f := w.Fig1
	be, _ := acme.RequestEIP(w.Host(f.CloudB, f.RegionsB[0], "az1", 1))
	sip, _ := acme.RequestSIP(f.CloudB)
	if err := acme.Bind(be, sip, 1); err != nil {
		t.Fatal(err)
	}
	client, _ := acme.RequestEIP(w.Host(f.CloudA, f.RegionsA[0], "az1", 1))
	// Egress caps bind to the sending endpoint.
	if err := acme.SetVMEgressCap(client, 100e6); err != nil {
		t.Fatal(err)
	}
	acme.SetPermitList(be, []Prefix{Exact(client)})
	conn, err := acme.Connect(client, be, ConnectOpts{SizeBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	if got := conn.Flow.Rate(); got > 100e6*1.01 {
		t.Fatalf("VM cap not enforced via facade: rate %v", got)
	}
	conn.Close()
	if err := acme.Unbind(be, sip); err != nil {
		t.Fatal(err)
	}
	if err := acme.Unbind(be, sip); err == nil {
		t.Fatal("double unbind accepted")
	}
	badIP, _ := ParseIP("9.9.9.9")
	if err := acme.SetVMEgressCap(badIP, 1); err == nil {
		t.Fatal("cap on ungranted address accepted")
	}
}

func TestFacadeNamesAndClasses(t *testing.T) {
	w, acme := fig1(t)
	f := w.Fig1
	src, _ := acme.RequestEIP(w.Host(f.CloudA, f.RegionsA[0], "az1", 1))
	dst, _ := acme.RequestEIP(w.Host(f.CloudB, f.RegionsB[0], "az1", 1))
	acme.SetPermitList(dst, []Prefix{Exact(src)})
	if err := acme.Register("db", dst); err != nil {
		t.Fatal(err)
	}
	got, ok := acme.Resolve("db")
	if !ok || got != dst {
		t.Fatalf("Resolve = %v,%v", got, ok)
	}
	conn, err := acme.ConnectName(src, "db", ConnectOpts{SizeBytes: -1, Class: BestEffort})
	if err != nil {
		t.Fatal(err)
	}
	conn.Close()
	if !acme.Unregister("db") {
		t.Fatal("unregister failed")
	}
	if _, err := acme.ConnectName(src, "db", ConnectOpts{}); err == nil {
		t.Fatal("connect to unregistered name succeeded")
	}
}

func TestFacadeOnPrem(t *testing.T) {
	w, acme := fig1(t)
	f := w.Fig1
	cloud, _ := acme.RequestEIP(w.Host(f.CloudA, f.RegionsA[0], "az1", 1))
	op, err := acme.RequestEIP(w.OnPremHost(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := acme.Permit(op, Exact(cloud)); err != nil {
		t.Fatal(err)
	}
	if _, err := acme.Connect(cloud, op, ConnectOpts{SizeBytes: -1}); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeErrors(t *testing.T) {
	w, acme := fig1(t)
	if _, err := acme.RequestEIP("not-a-node"); err == nil {
		t.Fatal("unknown VM accepted")
	}
	if _, err := acme.RequestSIP("not-a-provider"); err == nil {
		t.Fatal("unknown provider accepted")
	}
	ip, _ := ParseIP("9.9.9.9")
	if err := acme.Permit(ip, Anywhere()); err == nil {
		t.Fatal("permit on ungranted address accepted")
	}
	_ = w
}

func TestHelpers(t *testing.T) {
	ip, err := ParseIP("10.0.0.1")
	if err != nil {
		t.Fatal(err)
	}
	if Exact(ip).Len != 32 {
		t.Fatal("Exact not /32")
	}
	if Anywhere().Len != 0 {
		t.Fatal("Anywhere not /0")
	}
	if _, err := ParsePrefix("10.0.0.0/8"); err != nil {
		t.Fatal(err)
	}
	if Entry("10.0.0.0/8").Len != 8 {
		t.Fatal("Entry parse failed")
	}
}

func TestWorldClocks(t *testing.T) {
	w, _ := fig1(t)
	w.RunFor(time.Second)
	if w.Now() != time.Second {
		t.Fatalf("Now = %v", w.Now())
	}
}
