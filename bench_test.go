// Benchmark harness: one benchmark per experiment table (E1–E10 from
// DESIGN.md) plus micro-benchmarks of the hot paths the experiments lean
// on. Regenerate every result with:
//
//	go test -bench=. -benchmem
//
// The experiment benches report domain metrics via b.ReportMetric (boxes,
// routes, error percentages) so the paper-shape numbers appear alongside
// wall-clock cost.
package declnet

import (
	"strconv"
	"sync"
	"testing"
	"time"

	"declnet/internal/addr"
	"declnet/internal/core"
	"declnet/internal/exp"
	"declnet/internal/gateway"
	"declnet/internal/lb"
	"declnet/internal/metrics"
	"declnet/internal/netsim"
	"declnet/internal/permit"
	"declnet/internal/qos"
	"declnet/internal/routing"
	"declnet/internal/sim"
	"declnet/internal/topo"
	"declnet/internal/vnet"
)

// cellFloat extracts a numeric cell from an experiment table.
func cellFloat(b *testing.B, t *metrics.Table, rowLabel string, col int) float64 {
	b.Helper()
	for _, r := range t.Rows {
		if r[0] == rowLabel {
			v, err := strconv.ParseFloat(r[col], 64)
			if err != nil {
				b.Fatalf("cell %s[%d] = %q not numeric", rowLabel, col, r[col])
			}
			return v
		}
	}
	b.Fatalf("row %q not found", rowLabel)
	return 0
}

// BenchmarkE1BoxCount regenerates the Fig-1 burden comparison (E1).
func BenchmarkE1BoxCount(b *testing.B) {
	var last *metrics.Table
	for i := 0; i < b.N; i++ {
		t, err := exp.E1BoxCount()
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	b.ReportMetric(cellFloat(b, last, "total network boxes", 1), "baseline-boxes")
	b.ReportMetric(cellFloat(b, last, "tenant API calls", 2), "decl-api-calls")
}

// BenchmarkE2Catalog regenerates the component catalog (E2 / Table 1).
func BenchmarkE2Catalog(b *testing.B) {
	var rows int
	for i := 0; i < b.N; i++ {
		t, err := exp.E2Catalog()
		if err != nil {
			b.Fatal(err)
		}
		rows = len(t.Rows)
	}
	b.ReportMetric(float64(rows), "component-kinds")
}

// BenchmarkE3RoutingScale regenerates the routing-table scalability sweep
// (E3) at its middle scale.
func BenchmarkE3RoutingScale(b *testing.B) {
	var last *metrics.Table
	for i := 0; i < b.N; i++ {
		t, err := exp.E3RoutingScale([]int{5000}, 8, 42)
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	flat, _ := strconv.ParseFloat(last.Rows[0][2], 64)
	agg, _ := strconv.ParseFloat(last.Rows[0][3], 64)
	b.ReportMetric(flat, "flat-routes")
	b.ReportMetric(agg, "zone-agg-routes")
}

// BenchmarkE4PermitScale regenerates the permit-list scalability sweep
// (E4) at its middle scale.
func BenchmarkE4PermitScale(b *testing.B) {
	var last *metrics.Table
	for i := 0; i < b.N; i++ {
		t, err := exp.E4PermitScale([]int{5000}, 8, 50*time.Millisecond, 42)
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	entries, _ := strconv.ParseFloat(last.Rows[0][1], 64)
	b.ReportMetric(entries, "permit-entries")
}

// BenchmarkE5QuotaEnforce regenerates the quota-enforcement error table
// (E5) at one representative cell.
func BenchmarkE5QuotaEnforce(b *testing.B) {
	var last *metrics.Table
	for i := 0; i < b.N; i++ {
		t, err := exp.E5QuotaEnforce([]int{200}, []sim.Time{100 * time.Millisecond}, 42)
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	meanErr, _ := strconv.ParseFloat(last.Rows[0][2], 64)
	b.ReportMetric(meanErr, "mean-err-%")
}

// BenchmarkE6QoSPotato regenerates the dedicated-vs-potato comparison (E6).
func BenchmarkE6QoSPotato(b *testing.B) {
	var last *metrics.Table
	for i := 0; i < b.N; i++ {
		t, err := exp.E6QoSPotato(200, 42)
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	// Ratio of cold-potato to dedicated median RTT on the inter-cloud
	// pair: the paper's approximation conjecture in one number.
	var ded, cold time.Duration
	for _, r := range last.Rows {
		if r[0] != "cloudA->cloudB" {
			continue
		}
		d, _ := time.ParseDuration(r[2])
		switch r[1] {
		case "dedicated":
			ded = d
		case "cold":
			cold = d
		}
	}
	if ded > 0 {
		b.ReportMetric(float64(cold)/float64(ded), "cold/dedicated-rtt")
	}
}

// BenchmarkE7Security regenerates the attack matrix (E7).
func BenchmarkE7Security(b *testing.B) {
	var last *metrics.Table
	for i := 0; i < b.N; i++ {
		t, err := exp.E7Security(10, 42)
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	var baseLeaked, declLeaked float64
	for _, r := range last.Rows {
		bl, _ := strconv.ParseFloat(r[4], 64)
		dl, _ := strconv.ParseFloat(r[7], 64)
		baseLeaked += bl
		declLeaked += dl
	}
	b.ReportMetric(baseLeaked, "baseline-leaked")
	b.ReportMetric(declLeaked, "decl-leaked")
}

// BenchmarkE8Migration regenerates the migration-effort comparison (E8).
func BenchmarkE8Migration(b *testing.B) {
	var last *metrics.Table
	for i := 0; i < b.N; i++ {
		t, err := exp.E8Migration(42)
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	b.ReportMetric(cellFloat(b, last, "provisioning steps", 1), "baseline-steps")
	b.ReportMetric(cellFloat(b, last, "provisioning steps", 2), "decl-steps")
}

// BenchmarkE9Potato regenerates the hot-vs-cold location sweep (E9).
func BenchmarkE9Potato(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.E9Potato(100, 42); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE10Availability regenerates the failover comparison (E10).
func BenchmarkE10Availability(b *testing.B) {
	var last *metrics.Table
	for i := 0; i < b.N; i++ {
		t, err := exp.E10Availability(200, 42)
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	for _, r := range last.Rows {
		if r[0] == "error rate %" {
			v, _ := strconv.ParseFloat(r[2], 64)
			b.ReportMetric(v, "decl-err-%")
		}
	}
}

// --- Micro-benchmarks of the hot paths --------------------------------

// BenchmarkLPMLookup measures the routing trie under a realistic table.
func BenchmarkLPMLookup(b *testing.B) {
	var tbl routing.Table
	for i := 0; i < 100000; i++ {
		p := addr.NewPrefix(addr.IP(uint32(i)<<8), 24)
		tbl.Install(p, routing.NextHop{ID: "hop"})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl.Lookup(addr.IP(uint32(i) * 2654435761))
	}
}

// BenchmarkPermitCheck measures default-off admission at scale.
func BenchmarkPermitCheck(b *testing.B) {
	e := permit.NewEngine()
	base := addr.MustParseIP("100.64.0.0")
	for i := 0; i < 50000; i++ {
		dst := base + addr.IP(i)
		e.Permit(dst, addr.NewPrefix(base+addr.IP(i*7), 32))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Check(base+addr.IP(i*7), base+addr.IP(i%50000))
	}
}

// BenchmarkSIPPick measures smooth-WRR backend selection.
func BenchmarkSIPPick(b *testing.B) {
	bal := lb.New(addr.MustParseIP("104.255.0.1"))
	for i := 0; i < 32; i++ {
		bal.Bind(addr.MustParseIP("104.0.0.1")+addr.IP(i), 1+i%5)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		be, err := bal.Pick()
		if err != nil {
			b.Fatal(err)
		}
		bal.Release(be)
	}
}

// BenchmarkMaxMinReshare measures the fluid solver's recompute cost with
// 200 concurrent flows on the Fig-1 world.
func BenchmarkMaxMinReshare(b *testing.B) {
	w := topo.BuildFig1(4)
	eng := sim.New(1)
	net := netsim.New(w.Graph, eng)
	src := topo.HostID(w.CloudA, w.RegionsA[0], "az1", 1)
	dst := topo.HostID(w.CloudB, w.RegionsB[0], "az1", 1)
	path, err := w.Graph.ShortestPath(src, dst, topo.PathOpts{})
	if err != nil {
		b.Fatal(err)
	}
	var probe *netsim.Flow
	for i := 0; i < 199; i++ {
		f, err := net.StartFlow(&netsim.Flow{Path: path, Size: -1})
		if err != nil {
			b.Fatal(err)
		}
		probe = f
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := net.StartFlow(&netsim.Flow{Path: path, Size: -1})
		if err != nil {
			b.Fatal(err)
		}
		probe.Rate() // force the admission solve
		net.Stop(f)
		probe.Rate() // force the departure solve
	}
	reportSolverCost(b, net)
}

// reportSolverCost attaches the solver's cost counters to a benchmark
// that drives a netsim.Network.
func reportSolverCost(b *testing.B, net *netsim.Network) {
	b.ReportMetric(float64(net.Recomputes)/float64(b.N), "recomputes/op")
	b.ReportMetric(float64(net.FlowsTouched)/float64(b.N), "flows-touched/op")
}

// benchLines builds n disjoint two-hop lines and returns one a->c path per
// line (the sparse regime: many components, no shared links).
func benchLines(b *testing.B, n int) (*topo.Graph, []topo.Path) {
	b.Helper()
	g := topo.New()
	paths := make([]topo.Path, n)
	for i := 0; i < n; i++ {
		a := topo.NodeID("a" + strconv.Itoa(i))
		m := topo.NodeID("b" + strconv.Itoa(i))
		c := topo.NodeID("c" + strconv.Itoa(i))
		for _, id := range []topo.NodeID{a, m, c} {
			g.MustAddNode(topo.Node{ID: id})
		}
		g.MustConnect("ab"+strconv.Itoa(i), a, m, topo.Backbone, 100e6, time.Millisecond, 0, 0)
		g.MustConnect("bc"+strconv.Itoa(i), m, c, topo.Backbone, 100e6, time.Millisecond, 0, 0)
		p, err := g.ShortestPath(a, c, topo.PathOpts{})
		if err != nil {
			b.Fatal(err)
		}
		paths[i] = p
	}
	return g, paths
}

// BenchmarkReshareIncremental measures the incremental fair-share solver
// in its two regimes. sparse: 256 disjoint busy components, each event
// touches one (the incremental win — compare flows-touched/op against
// sparse-full, which forces the old full recompute). dense: every flow
// shares one path, so the component is the whole network and incremental
// equals full work.
func BenchmarkReshareIncremental(b *testing.B) {
	sparse := func(b *testing.B, forceFull bool) {
		const lines = 256
		g, paths := benchLines(b, lines)
		eng := sim.New(1)
		net := netsim.New(g, eng)
		net.ForceFull = forceFull
		occupants := make([]*netsim.Flow, lines)
		for i, p := range paths {
			f, err := net.StartFlow(&netsim.Flow{Path: p, Size: -1})
			if err != nil {
				b.Fatal(err)
			}
			occupants[i] = f
		}
		occupants[0].Rate() // settle the admission batch
		net.Recomputes, net.FlowsTouched, net.LinksTouched = 0, 0, 0
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			line := i % lines
			f, err := net.StartFlow(&netsim.Flow{Path: paths[line], Size: -1})
			if err != nil {
				b.Fatal(err)
			}
			occupants[line].Rate()
			net.Stop(f)
			occupants[line].Rate()
		}
		reportSolverCost(b, net)
	}
	b.Run("sparse", func(b *testing.B) { sparse(b, false) })
	b.Run("sparse-full", func(b *testing.B) { sparse(b, true) })
	b.Run("dense", func(b *testing.B) {
		g, paths := benchLines(b, 1)
		eng := sim.New(1)
		net := netsim.New(g, eng)
		var probe *netsim.Flow
		for i := 0; i < 200; i++ {
			f, err := net.StartFlow(&netsim.Flow{Path: paths[0], Size: -1})
			if err != nil {
				b.Fatal(err)
			}
			probe = f
		}
		probe.Rate()
		net.Recomputes, net.FlowsTouched, net.LinksTouched = 0, 0, 0
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			f, err := net.StartFlow(&netsim.Flow{Path: paths[0], Size: -1})
			if err != nil {
				b.Fatal(err)
			}
			probe.Rate()
			net.Stop(f)
			probe.Rate()
		}
		reportSolverCost(b, net)
	})
}

// BenchmarkSweepParallel compares the experiment sweep driver's serial and
// parallel modes on an E5 grid (four independent cells per op).
func BenchmarkSweepParallel(b *testing.B) {
	grid := func(b *testing.B) {
		t, err := exp.E5QuotaEnforce([]int{50, 100},
			[]sim.Time{50 * time.Millisecond, 100 * time.Millisecond}, 42)
		if err != nil {
			b.Fatal(err)
		}
		if len(t.Rows) != 4 {
			b.Fatalf("rows = %d, want 4", len(t.Rows))
		}
	}
	b.Run("serial", func(b *testing.B) {
		exp.SetParallel(false)
		defer exp.SetParallel(true)
		for i := 0; i < b.N; i++ {
			grid(b)
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			grid(b)
		}
	})
}

// BenchmarkFabricEvaluate measures the baseline reachability evaluator on
// the cross-cloud TGW path.
func BenchmarkFabricEvaluate(b *testing.B) {
	base, err := exp.BuildBaselineFig1()
	if err != nil {
		b.Fatal(err)
	}
	src := gateway.Source{Kind: gateway.FromInstance, VPCID: base.Analytics.ID, InstanceID: base.Spark1.ID}
	pkt := vnet.Packet{Src: base.Spark1.PrivateIP, Dst: base.DB1.PrivateIP, Proto: vnet.TCP, DstPort: 5432}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if v := base.Env.Fabric.Evaluate(src, pkt); !v.Delivered {
			b.Fatal(v)
		}
	}
}

// BenchmarkDeclarativeConnect measures the full declarative data path:
// admission, balancing, path selection, flow setup/teardown.
func BenchmarkDeclarativeConnect(b *testing.B) {
	d, err := exp.BuildDeclarativeFig1(1, 2)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conn, err := d.Cloud.Connect(exp.Tenant, d.Spark1, d.DBService, core.ConnectOpts{SizeBytes: -1})
		if err != nil {
			b.Fatal(err)
		}
		conn.Close()
	}
}

// BenchmarkConnect measures the declarative connect fast path on a dense
// Fig-1 world (50 hosts per zone). warm hits the epoch-keyed path cache and
// the admission/provider caches on every op; cold bumps the topology epoch
// before each connect (a SetLinkUp no-op write still advances the epoch)
// so every op pays a full Dijkstra plus a cache flush. The warm/cold ratio
// is the fast path's whole value proposition in one number.
func BenchmarkConnect(b *testing.B) {
	setup := func(b *testing.B) *exp.DeclarativeFig1 {
		b.Helper()
		d, err := exp.BuildDeclarativeFig1(1, 50)
		if err != nil {
			b.Fatal(err)
		}
		// Prime every cache so the first measured op is steady-state.
		conn, err := d.Cloud.Connect(exp.Tenant, d.Spark1, d.DBService, core.ConnectOpts{SizeBytes: -1})
		if err != nil {
			b.Fatal(err)
		}
		conn.Close()
		return d
	}
	b.Run("warm", func(b *testing.B) {
		d := setup(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			conn, err := d.Cloud.Connect(exp.Tenant, d.Spark1, d.DBService, core.ConnectOpts{SizeBytes: -1})
			if err != nil {
				b.Fatal(err)
			}
			conn.Close()
		}
	})
	b.Run("cold", func(b *testing.B) {
		d := setup(b)
		link := d.Cloud.G.Links()[0]
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := d.Cloud.G.SetLinkUp(link.ID, link.Up()); err != nil {
				b.Fatal(err)
			}
			conn, err := d.Cloud.Connect(exp.Tenant, d.Spark1, d.DBService, core.ConnectOpts{SizeBytes: -1})
			if err != nil {
				b.Fatal(err)
			}
			conn.Close()
		}
	})
}

// BenchmarkConnectParallel drives warm connects from all procs with an
// external mutex serializing the connect itself — the shape the API server
// imposes (exclusive lock on writes) — so the benchmark surfaces any
// contention the read-side caches add under parallel load.
func BenchmarkConnectParallel(b *testing.B) {
	d, err := exp.BuildDeclarativeFig1(1, 50)
	if err != nil {
		b.Fatal(err)
	}
	conn, err := d.Cloud.Connect(exp.Tenant, d.Spark1, d.DBService, core.ConnectOpts{SizeBytes: -1})
	if err != nil {
		b.Fatal(err)
	}
	conn.Close()
	var mu sync.Mutex
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			mu.Lock()
			conn, err := d.Cloud.Connect(exp.Tenant, d.Spark1, d.DBService, core.ConnectOpts{SizeBytes: -1})
			if err != nil {
				mu.Unlock()
				b.Fatal(err)
			}
			conn.Close()
			mu.Unlock()
		}
	})
}

// BenchmarkShortestPath measures raw Dijkstra on a few-hundred-node Fig-1
// world (25 hosts per zone ≈ 260 nodes), cross-cloud with a soft-avoid
// constraint so the search explores both the backbone and transit tiers.
func BenchmarkShortestPath(b *testing.B) {
	w := topo.BuildFig1(25)
	src := topo.HostID(w.CloudA, w.RegionsA[0], "az1", 1)
	dst := topo.HostID(w.CloudB, w.RegionsB[1], "az2", 1)
	opts := topo.PathOpts{Avoid: map[topo.LinkKind]bool{topo.Transit: true}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Graph.ShortestPath(src, dst, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPotatoPath measures policy path computation on the Fig-1 graph.
func BenchmarkPotatoPath(b *testing.B) {
	w := topo.BuildFig1(4)
	src := topo.HostID(w.CloudA, w.RegionsA[0], "az1", 1)
	dst := topo.HostID(w.CloudB, w.RegionsB[0], "az1", 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := qos.PathFor(w.Graph, qos.ColdPotato, src, dst); err != nil {
			b.Fatal(err)
		}
	}
}
