// Securitydrill: the two-layer security story of §4 — default-off permit
// lists at the network plus mandatory authentication at the API gateway —
// exercised attack by attack.
//
//	go run ./examples/securitydrill
package main

import (
	"fmt"
	"log"

	"declnet"
	"declnet/internal/app"
)

func main() {
	world, err := declnet.NewFig1World(23, 2)
	if err != nil {
		log.Fatal(err)
	}
	f := world.Fig1
	acme := world.Tenant("acme")
	must := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}

	// The protected asset: an orders API on a database node in cloud B.
	dbNode := world.Host(f.CloudB, f.RegionsB[0], "az1", 1)
	db, err := acme.RequestEIP(dbNode)
	must(err)
	// Legitimate client and a compromised bastion, both in cloud A.
	clientEIP, err := acme.RequestEIP(world.Host(f.CloudA, f.RegionsA[0], "az1", 1))
	must(err)
	bastion, err := acme.RequestEIP(world.Host(f.CloudA, f.RegionsA[0], "az1", 2))
	must(err)
	// Network layer: permit exactly the client. The bastion — same
	// tenant, same cloud, same "subnet" in the old world — is not on the
	// list. Default-off does the rest.
	must(acme.SetPermitList(db, []declnet.Prefix{declnet.Exact(clientEIP)}))

	// Application layer: the API gateway the paper assumes (§4(1)).
	svc := app.NewService("orders",
		app.Operation{Name: "get_order", Scope: "read", Schema: []string{"id"}},
		app.Operation{Name: "admin_dump", Scope: "admin"},
	)
	gw := app.NewGateway(svc)
	readToken := gw.IssueToken("client", "read")

	type result struct{ name, outcome string }
	var results []result
	record := func(name, outcome string) {
		results = append(results, result{name, outcome})
	}

	// 1. Internet scanner probes the database address.
	scanner, _ := declnet.ParseIP("203.0.113.99")
	if !world.Cloud.Admitted(scanner, db) {
		record("internet port scan", "blocked at network (default-off)")
	} else {
		record("internet port scan", "LEAKED past network")
	}

	// 2. Compromised bastion tries the database directly.
	if !world.Cloud.Admitted(bastion, db) {
		record("lateral movement from bastion", "blocked at network (not on permit list)")
	} else {
		record("lateral movement from bastion", "LEAKED past network")
	}

	// 3. Permitted client, no credential.
	if world.Cloud.Admitted(clientEIP, db) {
		if out := gw.Handle(app.Request{Op: "get_order", Args: map[string]string{"id": "1"}}); out != app.Served {
			record("anonymous API call from permitted host", "blocked at gateway ("+out.String()+")")
		} else {
			record("anonymous API call from permitted host", "LEAKED")
		}
	}

	// 4. Permitted client, stolen low-privilege token, admin operation.
	if out := gw.Handle(app.Request{Bearer: readToken, Op: "admin_dump"}); out != app.Served {
		record("privilege escalation with stolen token", "blocked at gateway ("+out.String()+")")
	} else {
		record("privilege escalation with stolen token", "LEAKED")
	}

	// 5. The legitimate request sails through both layers.
	if world.Cloud.Admitted(clientEIP, db) {
		if out := gw.Handle(app.Request{Bearer: readToken, Op: "get_order",
			Args: map[string]string{"id": "42"}}); out == app.Served {
			record("legitimate read", "served")
		} else {
			record("legitimate read", "wrongly blocked ("+out.String()+")")
		}
	}

	fmt.Println("two-layer security drill (permit lists + API gateway):")
	for _, r := range results {
		fmt.Printf("  %-42s %s\n", r.name, r.outcome)
	}
	fmt.Println("\nthe acknowledged gap: DPI-style payload inspection is not part of")
	fmt.Println("this model (§4) — run expdriver -run E7 for the full comparison")
	fmt.Printf("\ngateway outcomes: served fraction %.2f\n", gw.ServedFraction())
}
