// Multicloud: the paper's Figure-1 deployment — analytics on cloud A, a
// replicated database on cloud B, an on-prem alert manager — expressed
// entirely through the declarative API, then driven with traffic:
// service-IP load balancing with weights, a regional egress guarantee, a
// cold-potato transit profile, and a backend failure with provider-side
// failover.
//
//	go run ./examples/multicloud
package main

import (
	"fmt"
	"log"
	"time"

	"declnet"
)

func main() {
	world, err := declnet.NewFig1World(7, 2)
	if err != nil {
		log.Fatal(err)
	}
	f := world.Fig1
	acme := world.Tenant("acme")

	must := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}

	// --- Endpoints --------------------------------------------------------
	spark1, err := acme.RequestEIP(world.Host(f.CloudA, f.RegionsA[0], "az1", 1))
	must(err)
	spark2, err := acme.RequestEIP(world.Host(f.CloudA, f.RegionsA[0], "az2", 1))
	must(err)
	db1, err := acme.RequestEIP(world.Host(f.CloudB, f.RegionsB[0], "az1", 1))
	must(err)
	db2, err := acme.RequestEIP(world.Host(f.CloudB, f.RegionsB[0], "az2", 1))
	must(err)
	alerts, err := acme.RequestEIP(world.OnPremHost(1))
	must(err)

	// --- Availability: one service IP over both replicas, 2:1 weighted ----
	dbSvc, err := acme.RequestSIP(f.CloudB)
	must(err)
	must(acme.Bind(db1, dbSvc, 2))
	must(acme.Bind(db2, dbSvc, 1))
	fmt.Printf("database service %s -> {%s w=2, %s w=1}\n", dbSvc, db1, db2)

	// --- Security: permit exactly the communication matrix ---------------
	must(acme.CreateGroup("spark", spark1, spark2))
	must(acme.SetPermitList(dbSvc, []declnet.Prefix{declnet.Exact(alerts)}, "spark"))
	must(acme.SetPermitList(alerts, nil, "spark"))
	must(acme.SetPermitList(spark1, []declnet.Prefix{declnet.Exact(spark2)}))
	must(acme.SetPermitList(spark2, []declnet.Prefix{declnet.Exact(spark1)}))

	// --- QoS: regional egress guarantee + cold-potato transit -------------
	must(acme.SetQoS(f.CloudA, f.RegionsA[0], 2e9)) // 2 Gbps out of a-east
	must(acme.SetPotato(f.CloudA, declnet.ColdPotato))

	// --- Traffic: weighted balancing across replicas ----------------------
	hits := map[declnet.EIP]int{}
	for i := 0; i < 9; i++ {
		conn, err := acme.Connect(spark1, dbSvc, declnet.ConnectOpts{SizeBytes: -1})
		must(err)
		hits[conn.DstEIP]++
		conn.Close()
	}
	fmt.Printf("9 connections balanced: db1=%d db2=%d (weights 2:1)\n", hits[db1], hits[db2])

	// --- Bulk: analytics shuffle under the egress guarantee ---------------
	var fct time.Duration
	_, err = acme.Transfer(spark1, dbSvc, 500e6, func(d time.Duration) { fct = d })
	must(err)
	world.Run()
	fmt.Printf("500 MB shuffle to the db service in %v over cold-potato\n", fct.Round(time.Millisecond))

	// --- Failure: kill db1; the provider health-checks and fails over -----
	provB, _ := world.Cloud.Provider(f.CloudB)
	provB.MarkHealth(db1, false)
	failover := map[declnet.EIP]int{}
	for i := 0; i < 5; i++ {
		conn, err := acme.Connect(alerts, dbSvc, declnet.ConnectOpts{SizeBytes: -1})
		must(err)
		failover[conn.DstEIP]++
		conn.Close()
	}
	fmt.Printf("after db1 failure: db1=%d db2=%d (provider failover, zero tenant config)\n",
		failover[db1], failover[db2])

	// --- On-prem to cloud, same verbs --------------------------------------
	rtt, _, err := acme.Probe(alerts, dbSvc)
	must(err)
	fmt.Printf("on-prem alert manager -> db service RTT %v\n", rtt.Round(100*time.Microsecond))

	fmt.Println("\nno VPCs, no gateways, no route tables, no appliances — 0 boxes")
}
