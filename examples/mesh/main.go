// Mesh: a service-mesh control plane running entirely on the declarative
// API — the bridge between the paper's proposal and the Kubernetes/mesh
// world it cites as its application-layer assumption (§4).
//
// Three services (web -> orders -> payments) declare *who may call whom*;
// the mesh derives every permit list, SIP, and bind underneath. Then it
// does the L7 things meshes are for: a 20% canary rollout and a circuit
// breaker riding out a broken deploy.
//
//	go run ./examples/mesh
package main

import (
	"fmt"
	"log"
	"time"

	"declnet"
	"declnet/internal/app"
	"declnet/internal/mesh"
	"declnet/internal/topo"
)

func main() {
	world, err := declnet.NewFig1World(13, 3)
	if err != nil {
		log.Fatal(err)
	}
	f := world.Fig1
	m := mesh.New(world.Cloud, "acme")
	must := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}

	// --- Declare the service graph ----------------------------------------
	_, err = m.AddService(mesh.ServiceConfig{Name: "web", Provider: f.CloudA})
	must(err)
	orders, err := m.AddService(mesh.ServiceConfig{
		Name: "orders", Provider: f.CloudB, Port: 443,
		Operations: []app.Operation{{Name: "place", Scope: "write", Schema: []string{"sku"}}},
	})
	must(err)
	payments, err := m.AddService(mesh.ServiceConfig{
		Name: "payments", Provider: f.CloudB, Port: 443,
		Operations:       []app.Operation{{Name: "charge", Scope: "pay", Schema: []string{"amount"}}},
		BreakerThreshold: 3, BreakerCooldown: 2 * time.Second,
	})
	must(err)
	must(m.Allow("web", "orders"))
	must(m.Allow("orders", "payments"))

	// --- Deploy workloads ---------------------------------------------------
	webWL, err := m.Deploy("web", topo.HostID(f.CloudA, f.RegionsA[0], "az1", 1), false)
	must(err)
	ordersWL, err := m.Deploy("orders", topo.HostID(f.CloudB, f.RegionsB[0], "az1", 1), false)
	must(err)
	_, err = m.Deploy("payments", topo.HostID(f.CloudB, f.RegionsB[0], "az2", 1), false)
	must(err)
	fmt.Println("service graph: web -> orders -> payments (permit lists derived, 0 written by hand)")

	// Identity enforcement: payments accepts orders, not web.
	payTok := payments.Gateway().IssueToken("orders", "pay")
	goodCharge := mesh.CallOpts{Request: app.Request{Bearer: payTok, Op: "charge",
		Args: map[string]string{"amount": "42"}}}
	if _, err := m.Call("web", webWL, "payments", goodCharge); err != nil {
		fmt.Println("web -> payments:", err)
	}
	res, err := m.Call("orders", ordersWL, "payments", goodCharge)
	must(err)
	fmt.Printf("orders -> payments: %v in %v\n", res.Outcome, res.RTT.Round(100*time.Microsecond))

	// --- Canary rollout ------------------------------------------------------
	_, err = m.Deploy("orders", topo.HostID(f.CloudB, f.RegionsB[1], "az1", 1), true)
	must(err)
	must(m.SetCanaryWeight("orders", 20))
	ordTok := orders.Gateway().IssueToken("web", "write")
	place := mesh.CallOpts{Request: app.Request{Bearer: ordTok, Op: "place",
		Args: map[string]string{"sku": "widget"}}}
	canaryHits := 0
	for i := 0; i < 100; i++ {
		r, err := m.Call("web", webWL, "orders", place)
		must(err)
		for _, w := range orders.Workloads() {
			if w.Canary && w.EIP == r.Backend {
				canaryHits++
			}
		}
	}
	fmt.Printf("canary at 20%%: %d/100 requests hit the canary\n", canaryHits)

	// --- Circuit breaker ------------------------------------------------------
	bad := mesh.CallOpts{Request: app.Request{Op: "charge"}} // anonymous: fails at gateway
	for i := 0; i < 3; i++ {
		m.Call("orders", ordersWL, "payments", bad)
	}
	if _, err := m.Call("orders", ordersWL, "payments", bad); err != nil {
		fmt.Println("after 3 failures:", err)
	}
	world.RunFor(3 * time.Second)
	if r, err := m.Call("orders", ordersWL, "payments", goodCharge); err == nil && r.Outcome == app.Served {
		fmt.Println("after cooldown: circuit half-opened, probe served, breaker closed")
	}
	fmt.Println("\nall of it — identities, canaries, breakers — over five networking verbs")
}
