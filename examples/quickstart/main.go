// Quickstart: the whole Table-2 API in one sitting.
//
// A tenant brings up two instances in different clouds, permits one to
// reach the other, and moves a file — with no VPCs, subnets, gateways,
// route tables, or appliances anywhere in sight.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"declnet"
)

func main() {
	// A simulated multi-cloud world: two providers, two regions each,
	// an on-prem site, the public internet, and an exchange point —
	// the paper's Figure 1.
	world, err := declnet.NewFig1World(42, 2)
	if err != nil {
		log.Fatal(err)
	}
	f := world.Fig1
	acme := world.Tenant("acme")

	// request_eip(vm_id): endpoint IPs for a client in cloud A and a
	// server in cloud B. Flat, globally routable, default-off.
	client, err := acme.RequestEIP(world.Host(f.CloudA, f.RegionsA[0], "az1", 1))
	if err != nil {
		log.Fatal(err)
	}
	server, err := acme.RequestEIP(world.Host(f.CloudB, f.RegionsB[0], "az1", 1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("client EIP: %s (cloud A)\nserver EIP: %s (cloud B)\n", client, server)

	// Default-off: without a permit list, nothing flows.
	if _, err := acme.Connect(client, server, declnet.ConnectOpts{SizeBytes: 1 << 20}); err != nil {
		fmt.Println("before set_permit_list:", err)
	}

	// set_permit_list(eip, permit_list): admit exactly the client.
	if err := acme.SetPermitList(server, []declnet.Prefix{declnet.Exact(client)}); err != nil {
		log.Fatal(err)
	}

	// Move 100 MB across clouds and report the completion time.
	var fct time.Duration
	if _, err := acme.Transfer(client, server, 100e6, func(d time.Duration) { fct = d }); err != nil {
		log.Fatal(err)
	}
	world.Run()
	fmt.Printf("100 MB cloud A -> cloud B in %v (virtual time)\n", fct.Round(time.Millisecond))

	// Probe the path the provider chose.
	rtt, delivered, err := acme.Probe(client, server)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("RTT %v, delivered=%v\n", rtt.Round(100*time.Microsecond), delivered)
}
