// Migration: move a workload between clouds with the declarative API —
// the §5 claim that "any migration between clouds will become incredibly
// simple as the basic interface will be constant between clouds."
//
// The analytics tier starts in cloud A, talks to a database service in
// cloud B, then moves to cloud B. The move is: release the old EIPs,
// request new ones from the other provider, refresh the permit lists.
// Same verbs, different provider; connectivity, security, and QoS intent
// carry over.
//
//	go run ./examples/migration
package main

import (
	"fmt"
	"log"
	"time"

	"declnet"
)

func main() {
	world, err := declnet.NewFig1World(11, 2)
	if err != nil {
		log.Fatal(err)
	}
	f := world.Fig1
	acme := world.Tenant("acme")
	must := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}
	calls := 0
	count := func(err error) {
		must(err)
		calls++
	}

	// --- Day 1: the tier lives in cloud A ---------------------------------
	worker1, err := acme.RequestEIP(world.Host(f.CloudA, f.RegionsA[0], "az1", 1))
	must(err)
	worker2, err := acme.RequestEIP(world.Host(f.CloudA, f.RegionsA[0], "az2", 1))
	must(err)
	db, err := acme.RequestEIP(world.Host(f.CloudB, f.RegionsB[0], "az1", 1))
	must(err)
	dbSvc, err := acme.RequestSIP(f.CloudB)
	must(err)
	must(acme.Bind(db, dbSvc, 1))
	must(acme.SetPermitList(dbSvc, []declnet.Prefix{declnet.Exact(worker1), declnet.Exact(worker2)}))

	probe := func(src declnet.EIP, label string) {
		rtt, _, err := acme.Probe(src, dbSvc)
		must(err)
		fmt.Printf("%s -> db service: RTT %v\n", label, rtt.Round(100*time.Microsecond))
	}
	probe(worker1, "worker1 (cloud A)")

	// --- Day 2: move the tier to cloud B ----------------------------------
	fmt.Println("\nmigrating the tier to cloud B ...")
	count(acme.ReleaseEIP(worker1))
	count(acme.ReleaseEIP(worker2))
	newWorker1, err := acme.RequestEIP(world.Host(f.CloudB, f.RegionsB[0], "az1", 2))
	count(err)
	newWorker2, err := acme.RequestEIP(world.Host(f.CloudB, f.RegionsB[0], "az2", 2))
	count(err)
	count(acme.SetPermitList(dbSvc, []declnet.Prefix{
		declnet.Exact(newWorker1), declnet.Exact(newWorker2)}))

	probe(newWorker1, "worker1 (cloud B)")
	fmt.Printf("\nmigration done in %d API calls — the same verbs, no new concepts.\n", calls)
	fmt.Println("(the baseline equivalent rebuilds VNets/NSGs/routes/hub attachments")
	fmt.Println(" in the destination cloud's own vocabulary; see expdriver -run E8)")
}
