// Tiers: the provider-differentiation story (§1: providers can still
// "differentiate through rich performance, availability, and security
// tiers" beneath the uniform API). A tenant runs the same workload with
// reserved and best-effort traffic classes, survives a backbone link
// failure, and gets invoiced under two price tiers.
//
//	go run ./examples/tiers
package main

import (
	"fmt"
	"log"
	"time"

	"declnet"
	"declnet/internal/meter"
)

func main() {
	world, err := declnet.NewFig1World(5, 2)
	if err != nil {
		log.Fatal(err)
	}
	f := world.Fig1
	acme := world.Tenant("acme")
	bill := meter.New()
	world.AttachMeter(bill)
	must := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}

	// Endpoints and a named service.
	etl, err := acme.RequestEIP(world.Host(f.CloudA, f.RegionsA[0], "az1", 1))
	must(err)
	warehouse, err := acme.RequestEIP(world.Host(f.CloudB, f.RegionsB[0], "az1", 1))
	must(err)
	must(acme.SetPermitList(warehouse, []declnet.Prefix{declnet.Exact(etl)}))
	must(acme.Register("warehouse", warehouse))

	// A 4 Gbps regional guarantee for the nightly ETL; reports ride
	// best-effort (§4-footnote traffic classes).
	must(acme.SetQoS(f.CloudA, f.RegionsA[0], 4e9))
	must(acme.SetPotato(f.CloudA, declnet.ColdPotato))

	// Two jobs: a 2 GB reserved ETL and a 500 MB best-effort report.
	type job struct {
		name  string
		size  float64
		class declnet.QoSClass
		fct   time.Duration
		conn  *declnet.Conn
	}
	jobs := []*job{
		{name: "2 GB reserved ETL", size: 2e9, class: declnet.Reserved},
		{name: "500 MB best-effort report", size: 500e6, class: declnet.BestEffort},
	}
	start := func(j *job, remaining float64, offset time.Duration) {
		conn, err := acme.ConnectName(etl, "warehouse", declnet.ConnectOpts{
			SizeBytes: remaining, Class: j.class,
			OnDone: func(d time.Duration) { j.fct = offset + d },
		})
		must(err)
		j.conn = conn
	}
	for _, j := range jobs {
		start(j, j.size, 0)
	}

	// Mid-transfer, the backbone link the cold-potato path rides fails.
	// In-flight flows on it stall; the applications retry their
	// connections, and the provider's fresh path computation routes
	// around the failure — no tenant routing knowledge involved.
	world.Cloud.Eng.After(200*time.Millisecond, func() {
		if err := world.Cloud.Net.FailLink(f.CloudA + "/bb/a-east-a-west"); err != nil {
			log.Fatal(err)
		}
		fmt.Println("t=200ms: backbone link a-east<->a-west failed (provider's problem)")
	})
	world.Cloud.Eng.After(500*time.Millisecond, func() {
		for _, j := range jobs {
			if j.fct != 0 || j.conn.Flow.Rate() > 0 {
				continue // finished or unaffected
			}
			sent := j.conn.Flow.SentBytes()
			j.conn.Close()
			fmt.Printf("t=500ms: %s stalled after %.0f MB; app retries, provider re-paths\n",
				j.name, sent/1e6)
			start(j, j.size-sent, 500*time.Millisecond)
		}
	})
	world.Run()
	for _, j := range jobs {
		fmt.Printf("%s finished in %v (outage included)\n", j.name, j.fct.Round(time.Millisecond))
	}

	// A month of this nightly pattern, invoiced under both tiers.
	usage := bill.Snapshot("acme", world.Now())
	usage.EIPSeconds *= 30 * 24 * 3600 / world.Now().Seconds() // scale to a month
	usage.SIPSeconds *= 30 * 24 * 3600 / world.Now().Seconds()
	usage.QuotaGbpsSeconds *= 30
	usage.ReservedBytes *= 30
	usage.BestEffortBytes *= 30

	for _, tier := range []meter.Rate{meter.StandardTier(), meter.PremiumTier()} {
		inv := meter.Price("acme", usage, tier)
		fmt.Println()
		fmt.Print(inv.Table().Text())
	}
	fmt.Println("\nsame API, different tiers — the provider differentiates below the interface")
}
